"""Cost-model-tuned collective algorithm selection.

The best combine-phase schedule depends on payload size, rank count,
commutativity and whether the payload can be segmented — exactly the
decision space Träff's reduce-scatter/allreduce optimality analysis maps
out.  This module makes the choice automatic: the communicator's
``algorithm="auto"`` default calls :func:`choose_allreduce` /
:func:`choose_reduce` / :func:`choose_scan`, which look the answer up in
a :class:`DecisionTable` of payload-byte crossover thresholds per rank
band.

The shipped :data:`DEFAULT_TABLE` was **fitted by simulation** against
the default :class:`~repro.runtime.costmodel.CostModel` (run
``python -m repro tune`` to re-fit, e.g. after changing the cost model;
``load_decision_table``/``set_decision_table`` install the result).
Fitting simulates every candidate on every grid point and derives the
thresholds from the measured winners — there is no closed-form shortcut,
matching the repo's "costs emerge from messages" principle.

Safety invariants, enforced in the ``choose_*`` functions rather than in
the table so a bad fit can never produce a wrong answer:

* non-commutative operations are only ever routed to order-preserving
  schedules (recursive doubling, binomial, pipelined ring, chain);
* payload-segmenting schedules (ring, Rabenseifner, pipelined ring) are
  only chosen for *splittable* payloads: 1-D NumPy arrays with at least
  one element per rank combined by an op that declares itself
  ``elementwise`` (:class:`repro.mpi.op.Op`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Sequence

import numpy as np

__all__ = [
    "ALLREDUCE_ALGORITHMS",
    "REDUCE_ALGORITHMS",
    "SCAN_ALGORITHMS",
    "FUSION_CANDIDATES",
    "KERNEL_CANDIDATES",
    "Band",
    "DecisionTable",
    "DEFAULT_TABLE",
    "choose_allreduce",
    "choose_reduce",
    "choose_scan",
    "choose_fusion",
    "choose_kernel",
    "constant_span",
    "fusion_flush_bytes",
    "is_splittable",
    "fit_decision_table",
    "get_decision_table",
    "set_decision_table",
    "load_decision_table",
    "table_generation",
]

#: Candidate schedules per collective.  Order-preserving (safe for
#: non-commutative ops): recursive_doubling, binomial, pipelined_ring,
#: chain.  Payload-segmenting (need splittable): ring, rabenseifner,
#: pipelined_ring.
ALLREDUCE_ALGORITHMS = ("recursive_doubling", "ring", "rabenseifner")
REDUCE_ALGORITHMS = ("binomial", "pipelined_ring")
SCAN_ALGORITHMS = ("binomial", "chain")

#: "fusion" is a meta-decision rather than a schedule: should a
#: ReductionBucket holding this many pending payload bytes merge them
#: into one shared recursive-doubling wave ("fuse"), or dispatch them as
#: individual auto-tuned collectives ("flush")?  Fusing halves the
#: latency rounds; flushing lets large payloads keep their
#: bandwidth-optimal schedules.
FUSION_CANDIDATES = ("fuse", "flush")

#: "kernel" is the accumulate-phase routing decision of
#: :mod:`repro.core.kernels`: fold this rank's block with the scalar
#: per-element loop ("scalar") or the compiled block kernel
#: ("compiled")?  The compiled kernel amortizes NumPy's fixed call
#: overhead over the block; at very small n the plain loop can win.
#: The decision is only *applied* where the two routings are provably
#: bit-identical (``Kernel.loop_exact``), so — like the collective
#: safety invariants above — a bad fit can change speed, never results.
KERNEL_CANDIDATES = ("scalar", "compiled")

_UNBOUNDED = 1 << 62  # "no upper limit" sentinel for thresholds


@dataclass(frozen=True)
class Band:
    """One rank band of a decision table.

    Applies to communicators with ``nprocs <= max_ranks`` (bands are kept
    sorted ascending; the last band catches everything).  ``cutoffs`` is
    an ascending sequence of ``(max_bytes, algorithm)`` pairs: the first
    entry whose ``max_bytes`` is >= the payload size wins.
    """

    max_ranks: int
    cutoffs: tuple[tuple[int, str], ...]

    def lookup(self, nbytes: int) -> str:
        for max_bytes, algorithm in self.cutoffs:
            if nbytes <= max_bytes:
                return algorithm
        return self.cutoffs[-1][1]


# Conservative fusion fallback for tables fitted before the fusion
# dimension existed: fuse small pending buckets, flush past 16 KiB.
_FUSION_FALLBACK_BANDS = (
    Band(_UNBOUNDED, ((16384, "fuse"), (_UNBOUNDED, "flush"))),
)

# Kernel fallback for tables fitted before the kernel dimension
# existed: the measured crossover is tiny — NumPy's fixed overhead
# (~2 us) equals only one or two interpreter-dispatched accum calls —
# so the scalar loop only wins for single-element blocks.
_KERNEL_FALLBACK_BANDS = (
    Band(_UNBOUNDED, ((8, "scalar"), (_UNBOUNDED, "compiled"))),
)


@dataclass(frozen=True)
class DecisionTable:
    """Byte-threshold decision tables for the tuned collectives, plus the
    reduction-fusion crossover shared with :mod:`repro.core.fusion`."""

    allreduce: tuple[Band, ...]
    reduce: tuple[Band, ...]
    scan: tuple[Band, ...]
    source: str = "default"
    fusion: tuple[Band, ...] = _FUSION_FALLBACK_BANDS
    kernel: tuple[Band, ...] = _KERNEL_FALLBACK_BANDS
    #: Fabric signature this table was fitted against
    #: (:attr:`repro.runtime.fabric.Topology.signature`).  ``"flat"``
    #: tables are the process-wide default; non-flat tables install into
    #: a per-signature registry consulted only by communicators whose
    #: world runs on that fabric.
    topology: str = "flat"

    def lookup(self, kind: str, nbytes: int, nprocs: int) -> str:
        bands: tuple[Band, ...] = getattr(self, kind)
        for band in bands:
            if nprocs <= band.max_ranks:
                return band.lookup(nbytes)
        return bands[-1].lookup(nbytes)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        def enc(bands: tuple[Band, ...]):
            return [
                {
                    "max_ranks": (
                        b.max_ranks if b.max_ranks < _UNBOUNDED else None
                    ),
                    "cutoffs": [
                        [mb if mb < _UNBOUNDED else None, algo]
                        for mb, algo in b.cutoffs
                    ],
                }
                for b in bands
            ]

        return {
            "source": self.source,
            "topology": self.topology,
            "allreduce": enc(self.allreduce),
            "reduce": enc(self.reduce),
            "scan": enc(self.scan),
            "fusion": enc(self.fusion),
            "kernel": enc(self.kernel),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DecisionTable":
        def dec(items) -> tuple[Band, ...]:
            return tuple(
                Band(
                    max_ranks=(
                        _UNBOUNDED if b["max_ranks"] is None
                        else int(b["max_ranks"])
                    ),
                    cutoffs=tuple(
                        (_UNBOUNDED if mb is None else int(mb), str(algo))
                        for mb, algo in b["cutoffs"]
                    ),
                )
                for b in items
            )

        fusion = data.get("fusion")
        kernel = data.get("kernel")
        return cls(
            allreduce=dec(data["allreduce"]),
            reduce=dec(data["reduce"]),
            scan=dec(data["scan"]),
            source=str(data.get("source", "loaded")),
            # Tables written before the fusion/kernel dimensions existed
            # load with the conservative fallback thresholds.
            fusion=dec(fusion) if fusion else _FUSION_FALLBACK_BANDS,
            kernel=dec(kernel) if kernel else _KERNEL_FALLBACK_BANDS,
            # Tables written before fabrics existed are flat tables.
            topology=str(data.get("topology", "flat")),
        )


# ---------------------------------------------------------------------------
# The shipped default table.
#
# Output of fit_decision_table() against the default CostModel()
# (5 us latency, 500 MB/s, 1 us send/recv overheads) over ranks
# {4, 8, 16, 32} and payloads 8 B .. 2 MiB; thresholds sit at the
# geometric midpoint between the bracketing grid points of each measured
# crossover.  Re-fit with `python -m repro tune`.
# ---------------------------------------------------------------------------

DEFAULT_TABLE = DecisionTable(
    allreduce=(
        Band(8, ((16384, "recursive_doubling"), (_UNBOUNDED, "rabenseifner"))),
        Band(
            _UNBOUNDED,
            ((4096, "recursive_doubling"), (_UNBOUNDED, "rabenseifner")),
        ),
    ),
    reduce=(
        Band(4, ((65536, "binomial"), (_UNBOUNDED, "pipelined_ring"))),
        Band(
            _UNBOUNDED,
            ((262144, "binomial"), (_UNBOUNDED, "pipelined_ring")),
        ),
    ),
    scan=(
        # The fitter rejects the chain at every fitted rank count: its
        # p-1 serialized hops lose to the binomial's log2(p) rounds at
        # every payload size.  It stays available as an explicit
        # algorithm (and wins trivially at p == 2, handled in
        # choose_scan before the table is consulted).
        Band(_UNBOUNDED, ((_UNBOUNDED, "binomial"),)),
    ),
    fusion=(
        # The fitter finds the same crossover at every fitted rank
        # count: below it, halving the latency rounds by sharing one
        # recursive-doubling wave wins; above it, the individual
        # reductions' bandwidth-optimal schedules (Rabenseifner) beat
        # the fused wave's log2(p) full-payload hops.
        Band(_UNBOUNDED, ((16384, "fuse"), (_UNBOUNDED, "flush"))),
    ),
    kernel=(
        # Fitted on the wall clock (this dimension is about interpreter
        # dispatch vs NumPy call overhead, which the message cost model
        # does not represent): the compiled block kernel wins from
        # two-element blocks up, so only single-element payloads route
        # to the scalar loop.  Rank-independent — accumulation is local.
        Band(_UNBOUNDED, ((8, "scalar"), (_UNBOUNDED, "compiled"))),
    ),
    source="default (fitted against CostModel() defaults)",
)

_active_table: DecisionTable = DEFAULT_TABLE

#: Per-fabric tables keyed by topology signature ("multi_node:4", ...).
#: A communicator whose world runs on a non-flat fabric consults this
#: registry first and falls back to the flat active table — so the
#: "hierarchical" schedules are never auto-chosen until a table fitted
#: for that fabric has been installed (``python -m repro tune
#: --topology ...``).
_topology_tables: dict[str, DecisionTable] = {}

#: Bumped on every table install; schedule caches key their validity on
#: it so a ``set_decision_table``/``load_decision_table`` invalidates
#: every cached span without the caches having to subscribe anywhere.
_table_generation: int = 0


def table_generation() -> int:
    """Monotonic counter identifying the active table installation."""
    return _table_generation


def get_decision_table(topology: str = "flat") -> DecisionTable:
    """The table ``algorithm="auto"`` consults for a world on fabric
    ``topology`` (a :attr:`~repro.runtime.fabric.Topology.signature`).
    Falls back to the flat active table when no per-fabric table has
    been installed."""
    if topology != "flat":
        table = _topology_tables.get(topology)
        if table is not None:
            return table
    return _active_table


def set_decision_table(
    table: DecisionTable | None, *, topology: str | None = None
) -> DecisionTable | None:
    """Install ``table`` and return the table it replaced.

    ``topology=None`` (the default) installs under the table's own
    :attr:`DecisionTable.topology` signature — ``"flat"`` replaces the
    process-wide active table (``table=None`` restores the shipped
    default); a non-flat signature installs into the per-fabric registry
    (``table=None`` clears that fabric's entry).
    """
    global _active_table, _table_generation
    if topology is None:
        topology = "flat" if table is None else table.topology
    _table_generation += 1
    if topology == "flat":
        previous: DecisionTable | None = _active_table
        _active_table = DEFAULT_TABLE if table is None else table
        return previous
    if table is None:
        return _topology_tables.pop(topology, None)
    prev = _topology_tables.get(topology)
    _topology_tables[topology] = table
    return prev


def load_decision_table(path: str | Path) -> DecisionTable:
    """Load a table emitted by ``python -m repro tune`` and install it
    (under its own topology signature)."""
    table = DecisionTable.from_dict(json.loads(Path(path).read_text()))
    set_decision_table(table)
    return table


# ---------------------------------------------------------------------------
# Choice functions (the communicator's "auto" entry points)
# ---------------------------------------------------------------------------


def is_splittable(value: Any, op: Any, nprocs: int) -> bool:
    """True when ``value`` may be segmented across ranks: a 1-D NumPy
    array with at least one element per rank whose op declares itself
    elementwise."""
    return (
        isinstance(value, np.ndarray)
        and value.ndim == 1
        and value.shape[0] >= nprocs
        and bool(getattr(op, "elementwise", False))
    )


def choose_allreduce(
    nbytes: int,
    nprocs: int,
    commutative: bool = True,
    splittable: bool = False,
    *,
    table: DecisionTable | None = None,
    topology: str = "flat",
) -> str:
    """Pick the all-reduce schedule for one call site.

    Non-commutative or non-splittable operands always get the
    order-preserving recursive doubling; otherwise the decision table's
    byte thresholds decide between recursive doubling, ring,
    Rabenseifner and (on fabrics with a fitted per-topology table) the
    hierarchical node/leader schedule.
    """
    if nprocs <= 2 or not (commutative and splittable):
        return "recursive_doubling"
    return (table or get_decision_table(topology)).lookup(
        "allreduce", nbytes, nprocs
    )


def choose_reduce(
    nbytes: int,
    nprocs: int,
    commutative: bool = True,
    splittable: bool = False,
    *,
    table: DecisionTable | None = None,
    topology: str = "flat",
) -> str:
    """Pick the rooted-reduce schedule.  The pipelined ring is
    order-preserving, so commutativity does not restrict the choice —
    only splittability does."""
    if nprocs <= 2 or not splittable:
        return "binomial"
    return (table or get_decision_table(topology)).lookup(
        "reduce", nbytes, nprocs
    )


def choose_scan(
    nbytes: int,
    nprocs: int,
    commutative: bool = True,
    splittable: bool = False,
    *,
    table: DecisionTable | None = None,
    topology: str = "flat",
) -> str:
    """Pick the scan/exscan schedule.  Both candidates are
    order-preserving and neither segments the payload, so the table
    decides unconditionally."""
    if nprocs <= 2:
        return "chain" if nprocs == 2 else "binomial"
    return (table or get_decision_table(topology)).lookup(
        "scan", nbytes, nprocs
    )


def _band_span(
    bands: tuple[Band, ...], nbytes: int, nprocs: int
) -> tuple[int, int, str]:
    """The maximal ``[lo, hi]`` byte interval containing ``nbytes`` over
    which the banded lookup is constant, plus the algorithm it returns."""
    chosen = bands[-1]
    for band in bands:
        if nprocs <= band.max_ranks:
            chosen = band
            break
    lo = 0
    for max_bytes, algorithm in chosen.cutoffs:
        if nbytes <= max_bytes:
            return lo, max_bytes, algorithm
        lo = max_bytes + 1
    # Past the last threshold: Band.lookup falls through to the last
    # algorithm, so the span is unbounded above.
    return lo, _UNBOUNDED, chosen.cutoffs[-1][1]


def constant_span(
    kind: str,
    nbytes: int,
    nprocs: int,
    commutative: bool = True,
    splittable: bool = False,
    *,
    table: DecisionTable | None = None,
    topology: str = "flat",
) -> tuple[int, int, str]:
    """``(lo, hi, algorithm)``: the byte interval around ``nbytes`` on
    which :func:`choose_allreduce`/:func:`choose_reduce`/:func:`choose_scan`
    (per ``kind``) is constant, and the algorithm it picks there.

    This is what makes an external schedule cache *exact*: caching the
    whole span instead of the point answer means a cached hit anywhere in
    ``[lo, hi]`` returns precisely what the choice function would have —
    the cache can accelerate lookups but never move a crossover.
    The safety guards (small worlds, non-commutative/non-splittable
    operands) are size-independent, so they yield the full ``[0, ∞)``
    span.
    """
    tbl = table or get_decision_table(topology)
    if kind == "allreduce":
        if nprocs <= 2 or not (commutative and splittable):
            return 0, _UNBOUNDED, "recursive_doubling"
        return _band_span(tbl.allreduce, nbytes, nprocs)
    if kind == "reduce":
        if nprocs <= 2 or not splittable:
            return 0, _UNBOUNDED, "binomial"
        return _band_span(tbl.reduce, nbytes, nprocs)
    if kind == "scan":
        if nprocs <= 2:
            return 0, _UNBOUNDED, ("chain" if nprocs == 2 else "binomial")
        return _band_span(tbl.scan, nbytes, nprocs)
    if kind == "fusion":
        return _band_span(tbl.fusion, nbytes, nprocs)
    if kind == "kernel":
        return _band_span(tbl.kernel, nbytes, nprocs)
    raise ValueError(f"unknown tuning kind {kind!r}")


def choose_fusion(
    nbytes: int,
    nprocs: int,
    *,
    table: DecisionTable | None = None,
) -> str:
    """Should a reduction bucket holding ``nbytes`` of pending state keep
    accumulating into one fused wave (``"fuse"``) or dispatch now
    (``"flush"``)?  Consults the same fitted table as ``algorithm="auto"``
    so the two decisions can never disagree about the cost model."""
    return (table or _active_table).lookup("fusion", nbytes, nprocs)


def choose_kernel(
    nbytes: int,
    nprocs: int = 1,
    *,
    table: DecisionTable | None = None,
) -> str:
    """Should the accumulate phase fold an ``nbytes`` local block with
    the scalar per-element loop (``"scalar"``) or the compiled block
    kernel (``"compiled"``)?  Only consulted — and only honored — where
    the two are bit-identical (:mod:`repro.core.kernels` gates on
    ``loop_exact``), so the table decides speed alone."""
    return (table or _active_table).lookup("kernel", nbytes, nprocs)


def fusion_flush_bytes(nprocs: int, *, table: DecisionTable | None = None) -> int:
    """The pending-byte threshold at which :func:`choose_fusion` flips
    from "fuse" to "flush" for ``nprocs`` ranks — the auto-flush
    watermark of :class:`repro.core.fusion.ReductionBucket`."""
    bands = (table or _active_table).fusion
    for band in bands:
        if nprocs <= band.max_ranks:
            break
    else:  # pragma: no cover - bands always end unbounded
        band = bands[-1]
    threshold = 0
    for max_bytes, algorithm in band.cutoffs:
        if algorithm == "fuse":
            threshold = max_bytes
    return threshold


# ---------------------------------------------------------------------------
# Fitting
# ---------------------------------------------------------------------------

#: Default payload sweep for fitting: 8 B to 4 MiB in powers of 4.
DEFAULT_PAYLOAD_GRID = tuple(8 * 4**k for k in range(10))
DEFAULT_RANK_GRID = (4, 8, 16, 32)


def _simulate(
    kind: str, algorithm: str, nbytes: int, nprocs: int, cost_model,
    topology=None,
):
    """Virtual makespan of one collective call under ``cost_model`` (and
    optionally a non-flat fabric ``topology``)."""
    # Imported here: tuning is imported by repro.mpi.comm, and the
    # executor imports the communicator (cycle otherwise).
    from repro.mpi.op import SUM
    from repro.runtime.executor import spmd_run

    n = max(nprocs, nbytes // 8)

    def prog(comm):
        arr = np.zeros(n, dtype=np.float64)
        if kind == "allreduce":
            comm.allreduce(arr, SUM, algorithm=algorithm)
        elif kind == "reduce":
            comm.reduce(arr, SUM, algorithm=algorithm)
        elif kind == "scan":
            comm.scan(arr, SUM, algorithm=algorithm)
        elif kind == "fusion":
            # Two pending n-element reductions: "fuse" merges them into
            # one recursive-doubling wave over the concatenated payload
            # (what a ReductionBucket flush does); "flush" dispatches
            # them as two individual auto-tuned allreduces.
            if algorithm == "fuse":
                comm.allreduce(
                    np.zeros(2 * n, dtype=np.float64), SUM,
                    algorithm="recursive_doubling",
                )
            elif algorithm == "flush":
                comm.allreduce(arr, SUM)
                comm.allreduce(np.zeros(n, dtype=np.float64), SUM)
            else:  # pragma: no cover - internal misuse
                raise ValueError(f"unknown fusion candidate {algorithm!r}")
        else:  # pragma: no cover - internal misuse
            raise ValueError(f"unknown collective kind {kind!r}")

    return spmd_run(
        prog, nprocs, cost_model=cost_model, topology=topology
    ).time


#: Scalar-loop measurements run on at most this many elements and are
#: extrapolated linearly (the loop is O(n) interpreter steps), so a
#: full-grid fit does not spend seconds per large payload.
_KERNEL_PROBE_CAP = 8192


def _measure_kernel(algorithm: str, nbytes: int) -> float:
    """Wall-clock seconds to accumulate an ``nbytes`` int64 block under
    one kernel routing.  Unlike the collective kinds this dimension
    trades interpreter dispatch against NumPy fixed call overhead —
    real CPU effects the virtual message cost model does not represent
    — so it is fitted on the wall clock.  Rank-independent (the
    accumulate phase is local), measured as best-of-5 over an inner
    repetition loop sized so each sample is long enough to time."""
    import time

    from repro.core import kernels as _kernels
    from repro.ops import SumOp

    op = SumOp()
    n = max(1, nbytes // 8)
    if algorithm == "scalar":
        probe_n = min(n, _KERNEL_PROBE_CAP)
        arr = np.arange(probe_n, dtype=np.int64)
        scale = n / probe_n
        accum = op.accum

        def run():
            state = op.ident()
            for x in arr:
                state = accum(state, x)
            return state

    elif algorithm == "compiled":
        arr = np.arange(n, dtype=np.int64)
        scale = 1.0
        kern = _kernels.compile_kernel(op, arr)

        def run():
            return kern.accumulate(op, op.ident(), arr)

    else:  # pragma: no cover - internal misuse
        raise ValueError(f"unknown kernel candidate {algorithm!r}")

    run()  # warm caches and lazy imports
    inner = max(1, 4096 // max(1, len(arr)))
    best = math.inf
    for _ in range(5):
        t0 = time.perf_counter()
        for _ in range(inner):
            run()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best * scale


def _cutoffs_from_winners(
    payloads: Sequence[int], winners: Sequence[str]
) -> tuple[tuple[int, str], ...]:
    """Collapse a winner-per-payload row into byte thresholds, placing
    each crossover at the geometric midpoint of the bracketing grid
    points."""
    cutoffs: list[tuple[int, str]] = []
    current = winners[0]
    for i in range(1, len(winners)):
        if winners[i] != current:
            threshold = int(math.sqrt(payloads[i - 1] * payloads[i]))
            cutoffs.append((threshold, current))
            current = winners[i]
    cutoffs.append((_UNBOUNDED, current))
    return tuple(cutoffs)


def fit_decision_table(
    cost_model=None,
    *,
    rank_grid: Sequence[int] = DEFAULT_RANK_GRID,
    payload_grid: Sequence[int] = DEFAULT_PAYLOAD_GRID,
    topology=None,
) -> tuple[DecisionTable, dict[str, Any]]:
    """Re-fit the decision table by simulating every candidate on every
    ``(nprocs, payload)`` grid point.

    When ``topology`` (a :class:`repro.runtime.fabric.Topology`) is
    non-flat, every candidate is simulated on that fabric and the
    topology-aware ``"hierarchical"`` schedules join the allreduce and
    scan candidate pools — they only enter decision tables through a
    fit that actually measured them winning on a multi-tier fabric.

    Returns ``(table, report)``; the report carries the full measurement
    grid (virtual seconds per candidate per cell) for benchmarking /
    plotting, and serializes cleanly to JSON.
    """
    from repro.runtime.costmodel import CostModel

    cm = cost_model if cost_model is not None else CostModel()
    topo_sig = "flat"
    fit_topology = None
    if topology is not None and not getattr(topology, "is_flat", True):
        fit_topology = topology
        topo_sig = topology.signature
    payloads = sorted(int(b) for b in payload_grid)
    ranks = sorted(int(p) for p in rank_grid)
    candidates = {
        "allreduce": (
            ALLREDUCE_ALGORITHMS + ("hierarchical",)
            if fit_topology is not None
            else ALLREDUCE_ALGORITHMS
        ),
        "reduce": REDUCE_ALGORITHMS,
        "scan": (
            SCAN_ALGORITHMS + ("hierarchical",)
            if fit_topology is not None
            else SCAN_ALGORITHMS
        ),
        "fusion": FUSION_CANDIDATES,
        "kernel": KERNEL_CANDIDATES,
    }
    # The kernel dimension is rank-independent and wall-clock-measured;
    # memoize per (algorithm, payload) so rank bands reuse measurements.
    kernel_memo: dict[tuple[str, int], float] = {}

    def measure(kind: str, algorithm: str, nbytes: int, p: int) -> float:
        if kind == "kernel":
            key = (algorithm, nbytes)
            if key not in kernel_memo:
                kernel_memo[key] = _measure_kernel(algorithm, nbytes)
            return kernel_memo[key]
        return _simulate(kind, algorithm, nbytes, p, cm, fit_topology)

    grid: dict[str, list[dict[str, Any]]] = {}
    bands: dict[str, list[Band]] = {}
    for kind, algos in candidates.items():
        grid[kind] = []
        bands[kind] = []
        for p in ranks:
            winners: list[str] = []
            for nbytes in payloads:
                times = {
                    a: measure(kind, a, nbytes, p) for a in algos
                }
                winner = min(times, key=times.get)
                winners.append(winner)
                grid[kind].append(
                    {"nprocs": p, "nbytes": nbytes, "times": times,
                     "winner": winner}
                )
            bands[kind].append(Band(p, _cutoffs_from_winners(payloads, winners)))
        # the largest fitted band also covers everything above it
        last = bands[kind][-1]
        bands[kind][-1] = replace(last, max_ranks=_UNBOUNDED)
    table = DecisionTable(
        allreduce=tuple(bands["allreduce"]),
        reduce=tuple(bands["reduce"]),
        scan=tuple(bands["scan"]),
        fusion=tuple(bands["fusion"]),
        kernel=tuple(bands["kernel"]),
        source=(
            f"fitted (ranks={ranks}, payloads={payloads[0]}.."
            f"{payloads[-1]}B, topology={topo_sig})"
        ),
        topology=topo_sig,
    )
    report = {
        "cost_model": {
            "latency": cm.latency,
            "byte_time": cm.byte_time,
            "send_overhead": cm.send_overhead,
            "recv_overhead": cm.recv_overhead,
        },
        "topology": topo_sig,
        "rank_grid": ranks,
        "payload_grid": payloads,
        "grid": grid,
        "table": table.to_dict(),
    }
    return table, report
