"""The simulated MPI communicator.

:class:`Communicator` is the per-rank handle an SPMD function receives
from :func:`repro.runtime.spmd_run`.  It offers the familiar MPI surface —
point-to-point ``send``/``recv``, the collective set, ``split``/``dup`` —
over the virtual-time runtime.  Collective message tags are namespaced by
a per-communicator context id and a per-rank collective sequence number,
so concurrent communicators and back-to-back collectives can never match
each other's messages (the same guarantee real MPI provides via context
ids).

Group ranks vs. world ranks: a communicator addresses its members by
*group* rank (0..size-1); translation to world ranks happens here, at the
lowest level, exactly once.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Sequence

from repro.errors import CommunicatorError, RankFailedError
from repro.mpi import collectives as _coll
from repro.mpi import request as _req
from repro.mpi import tuning as _tuning
from repro.mpi.op import Op
from repro.runtime.channels import ANY_SOURCE, ANY_TAG
from repro.runtime.fabric import contiguous_node_groups
from repro.runtime.world import RankContext

__all__ = ["Communicator", "ANY_SOURCE", "ANY_TAG"]


def _reroot_plan(ch: "_Channel", plan, root: int):
    """Wrap a rank-0-rooted reduce plan with the re-root forwarding hop
    (the same exchange the blocking :meth:`Communicator.reduce` does)."""
    result = yield from plan
    if ch.rank == 0:
        ch.send(root, result)
        return None
    if ch.rank == root:
        got = yield _coll.Recv(0)
        return got
    return None


class _Channel:
    """Binds a communicator and one collective call's wire tag; this is
    the :class:`repro.mpi.collectives.CollChannel` implementation."""

    __slots__ = ("comm", "tag")

    def __init__(self, comm: "Communicator", tag: Hashable):
        self.comm = comm
        self.tag = tag

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def send(self, dest: int, payload: Any) -> None:
        self.comm._ctx.send_raw(self.comm._world_rank(dest), self.tag, payload)

    def recv(self, source: int) -> Any:
        return self.comm._ctx.recv_raw(self.comm._world_rank(source), self.tag)

    def collect(self, source: int):
        return self.comm._ctx.collect_envelope(
            self.comm._world_rank(source), self.tag
        )

    def probe(self, source: int) -> bool:
        """True if the next message from ``source`` on this collective's
        tag is already queued (non-blocking; used by the progress engine)."""
        ctx = self.comm._ctx
        return ctx.world.mailboxes[ctx.rank].probe(
            self.comm._world_rank(source), self.tag
        )

    def apply(self, env) -> Any:
        return self.comm._ctx.apply_recv(env)

    def charge(self, seconds: float, label: str) -> None:
        self.comm._ctx.charge(seconds, label)

    @property
    def metrics(self):
        """The run's metrics registry (no-op when tracing is disabled)."""
        return self.comm._ctx.tracer.metrics


#: Resolved-algorithm -> resumable plan factory (PR 4's generators).
#: Dispatch tables instead of if/elif chains: the schedule cache hands
#: back algorithm names, and a dict ``get`` keeps the dispatch cost flat
#: no matter how many schedules future PRs add.
_ALLREDUCE_PLANS = {
    "recursive_doubling": _coll.allreduce_recursive_doubling_plan,
    "ring": _coll.allreduce_ring_plan,
    "rabenseifner": _coll.allreduce_rabenseifner_plan,
}

_SCAN_PLANS = {
    "binomial": _coll.scan_simultaneous_binomial_plan,
    "chain": _coll.scan_linear_chain_plan,
}

_IREDUCE_PLANS = {
    "binomial": _coll.reduce_binomial_plan,
    "pipelined_ring": _coll.reduce_ring_pipelined_plan,
}


class Communicator:
    """MPI-like communicator over the simulated runtime."""

    def __init__(
        self,
        ctx: RankContext,
        members: Sequence[int] | None = None,
        cid: Hashable = 0,
    ):
        self._ctx = ctx
        if members is None:
            members = range(ctx.nprocs)
        self._members = tuple(members)
        if ctx.rank not in self._members:
            raise CommunicatorError(
                f"world rank {ctx.rank} is not a member of this communicator"
            )
        self._rank = self._members.index(ctx.rank)
        self._cid = cid
        self._coll_seq = 0
        self._split_seq = 0
        self._agree_seq = 0
        # Node partition of the members under the world's topology,
        # computed on first use (False = not yet computed; the computed
        # value may legitimately be None on a flat fabric).
        self._node_groups_cache: Any = False

    # -- introspection ------------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank within the communicator's group."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of processes in the communicator's group."""
        return len(self._members)

    @property
    def world_rank(self) -> int:
        return self._ctx.rank

    @property
    def context(self) -> RankContext:
        """The underlying rank context (clock, trace, raw messaging)."""
        return self._ctx

    @property
    def trace(self):
        return self._ctx.trace

    @property
    def tracer(self):
        """This rank's span tracer (the shared no-op when disabled)."""
        return self._ctx.tracer

    def charge(self, seconds: float, label: str = "compute") -> None:
        """Charge modeled local-compute time to this rank's virtual clock."""
        self._ctx.charge(seconds, label)

    def charge_elements(
        self, rate_name: str, n_elements: float, label: str | None = None
    ) -> None:
        """Charge ``n_elements`` of work at a named cost-model rate."""
        self._ctx.charge_elements(rate_name, n_elements, label)

    def _world_rank(self, group_rank: int) -> int:
        if not 0 <= group_rank < len(self._members):
            raise CommunicatorError(
                f"rank {group_rank} out of range for communicator of size "
                f"{len(self._members)}"
            )
        return self._members[group_rank]

    def _group_rank(self, world_rank: int) -> int:
        try:
            return self._members.index(world_rank)
        except ValueError:
            raise CommunicatorError(
                f"world rank {world_rank} is not in this communicator"
            ) from None

    # -- point-to-point -----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send ``obj`` to group rank ``dest`` (eager/non-blocking)."""
        self._ctx.trace.on_p2p("send")
        self._ctx.send_raw(self._world_rank(dest), ("u", self._cid, tag), obj)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Receive from group rank ``source`` (or any member) and return
        the payload.  Blocks until a matching message arrives."""
        self._ctx.trace.on_p2p("recv")
        wsource = ANY_SOURCE if source == ANY_SOURCE else self._world_rank(source)
        # ANY_TAG stays inside the tag tuple: the mailbox treats a
        # trailing wildcard as "any user tag *on this communicator*",
        # which both scopes the match correctly and lets revocation of
        # this communicator release the wait.
        return self._ctx.recv_raw(wsource, ("u", self._cid, tag))

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = 0,
    ) -> Any:
        """Combined send+receive (deadlock-free: sends are eager)."""
        self.send(obj, dest, sendtag)
        return self.recv(source, recvtag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already queued (non-blocking)."""
        wsource = ANY_SOURCE if source == ANY_SOURCE else self._world_rank(source)
        wtag = ("u", self._cid, tag)  # trailing ANY_TAG = scoped wildcard
        return self._ctx.world.mailboxes[self._ctx.rank].probe(wsource, wtag)

    # -- collective plumbing -------------------------------------------------

    def _channel(self, name: str) -> _Channel:
        """Start a collective: record it, allocate its wire tag.

        The tag carries the collective's *name* in addition to the
        context id and sequence number, so mismatched collectives across
        ranks (one calls bcast, another barrier) can never cross-match —
        they deadlock and are caught by the run's wall-clock timeout
        instead of silently exchanging wrong payloads.
        """
        self._coll_seq += 1
        self._ctx.trace.on_collective(name, self._ctx.clock.t)
        return _Channel(self, ("c", self._cid, self._coll_seq, name))

    @staticmethod
    def _tuning_inputs(value: Any, op: Any, nprocs: int) -> tuple[int, bool]:
        """``(nbytes, splittable)`` for the algorithm tuner.

        ``nbytes`` is only computed for splittable payloads (1-D NumPy
        arrays), where it is a cheap attribute read; sizing arbitrary
        payloads would mean pickling them, and no segmenting algorithm
        can use them anyway.
        """
        splittable = _tuning.is_splittable(value, op, nprocs)
        return (int(value.nbytes) if splittable else 0), splittable

    def _node_groups(self) -> tuple[tuple[int, ...], ...] | None:
        """The members' node partition under the world's topology (group
        ranks, contiguous by construction), or ``None`` when there is no
        hierarchy to exploit.  Computed once per communicator — members
        and topology are both immutable."""
        if self._node_groups_cache is False:
            self._node_groups_cache = contiguous_node_groups(
                getattr(self._ctx.world, "topology", None), self._members
            )
        return self._node_groups_cache

    def _topology_signature(self) -> str:
        topo = getattr(self._ctx.world, "topology", None)
        return "flat" if topo is None else topo.signature

    def _auto_choice(self, kind: str, value: Any, op: Any) -> str:
        """Resolve ``algorithm="auto"`` for one collective call.

        Goes through the world's cross-job :class:`ScheduleCache` when
        one is attached (always, for worlds built by this package):
        cached constant-decision spans return exactly what the tuning
        choice functions would, amortized across every job sharing the
        world.  The world's topology signature joins the decision key:
        a fabric with a fitted per-topology table gets its own answers
        (possibly ``"hierarchical"``), everyone else falls back to the
        flat table.
        """
        commutative = op.commutative if isinstance(op, Op) else True
        nbytes, splittable = self._tuning_inputs(value, op, self.size)
        topology = self._topology_signature()
        cache = getattr(self._ctx.world, "schedule_cache", None)
        if cache is not None:
            return cache.choose(
                kind, nbytes, self.size, commutative, splittable,
                topology=topology,
            )
        if kind == "allreduce":
            return _tuning.choose_allreduce(
                nbytes, self.size, commutative, splittable, topology=topology
            )
        if kind == "reduce":
            return _tuning.choose_reduce(
                nbytes, self.size, commutative, splittable, topology=topology
            )
        return _tuning.choose_scan(
            nbytes, self.size, commutative, splittable, topology=topology
        )

    # -- collectives ----------------------------------------------------------

    def barrier(self) -> None:
        """Block until every member has entered the barrier."""
        tr = self._ctx.tracer
        if not tr.enabled:
            _coll.barrier_dissemination(self._channel("barrier"))
            return
        with tr.span("barrier", phase="collective"):
            _coll.barrier_dissemination(self._channel("barrier"))

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; every rank returns the value."""
        tr = self._ctx.tracer
        if not tr.enabled:
            return _coll.bcast_binomial(self._channel("bcast"), obj, root)
        with tr.span("bcast", phase="collective"):
            return _coll.bcast_binomial(self._channel("bcast"), obj, root)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank; root returns the rank-ordered list."""
        tr = self._ctx.tracer
        if not tr.enabled:
            return _coll.gather_binomial(self._channel("gather"), obj, root)
        with tr.span("gather", phase="collective"):
            return _coll.gather_binomial(self._channel("gather"), obj, root)

    def _allgather_impl(self, obj: Any) -> list[Any]:
        ch = self._channel("allgather")
        items = _coll.gather_binomial(ch, obj, 0)
        return _coll.bcast_binomial(ch, items, 0)

    def allgather(self, obj: Any) -> list[Any]:
        """Gather one value per rank onto every rank (gather + bcast)."""
        tr = self._ctx.tracer
        if not tr.enabled:
            return self._allgather_impl(obj)
        with tr.span("allgather", phase="collective"):
            return self._allgather_impl(obj)

    def scatter(self, items: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter ``items[i]`` (on root) to rank ``i``; returns my item."""
        tr = self._ctx.tracer
        if not tr.enabled:
            return _coll.scatter_binomial(self._channel("scatter"), items, root)
        with tr.span("scatter", phase="collective"):
            return _coll.scatter_binomial(
                self._channel("scatter"), items, root
            )

    def alltoall(self, items: Sequence[Any]) -> list[Any]:
        """Personalized all-to-all: ``items[i]`` goes to rank ``i``."""
        tr = self._ctx.tracer
        if not tr.enabled:
            return _coll.alltoall_pairwise(self._channel("alltoall"), items)
        with tr.span("alltoall", phase="collective"):
            return _coll.alltoall_pairwise(self._channel("alltoall"), items)

    def reduce(
        self,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        root: int = 0,
        *,
        fanout: int = 2,
        combine_seconds: float = 0.0,
        algorithm: str = "auto",
    ) -> Any:
        """Reduce ``value`` across ranks with ``op``; the result lands on
        ``root`` (``None`` elsewhere).

        Aggregation: pass NumPy arrays to reduce many values at once
        (MPI's ``count > 1``).  ``algorithm`` selects the schedule:
        ``"auto"`` (default) consults :mod:`repro.mpi.tuning`'s decision
        table — the order-preserving ``"binomial"`` tree for small or
        non-splittable payloads, the segmented ``"pipelined_ring"`` for
        large 1-D arrays under elementwise ops — and both names may be
        given explicitly.  Passing ``fanout > 2`` with a commutative op
        selects the ``"kary"`` available-order tree (as before); that
        schedule is never chosen automatically.

        An op that mutates its left operand may mutate the ``value``
        passed in (the local contribution seeds the combining chain);
        pass a copy if the input must survive.  The global-view drivers
        always pass freshly accumulated states, so operators defined
        through :class:`~repro.core.operator.ReduceScanOp` are unaffected.
        """
        tr = self._ctx.tracer
        if not tr.enabled:
            return self._reduce_impl(
                value, op, root, fanout, combine_seconds, algorithm
            )
        with tr.span("reduce", phase="collective", op=getattr(op, "name", None)):
            return self._reduce_impl(
                value, op, root, fanout, combine_seconds, algorithm
            )

    def _resolve_reduce_algorithm(
        self, value: Any, op: Any, fanout: int, algorithm: str
    ) -> str:
        if algorithm != "auto":
            return algorithm
        commutative = op.commutative if isinstance(op, Op) else True
        if fanout > 2 and commutative:
            return "kary"
        return self._auto_choice("reduce", value, op)

    def _reduce_impl(
        self,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        root: int,
        fanout: int,
        combine_seconds: float,
        algorithm: str,
    ) -> Any:
        ch = self._channel("reduce")
        algorithm = self._resolve_reduce_algorithm(value, op, fanout, algorithm)
        if algorithm == "kary":
            result = _coll.reduce_kary_available(
                ch, value, op, fanout=max(fanout, 2),
                combine_seconds=combine_seconds,
            )
        elif algorithm == "pipelined_ring":
            result = _coll.reduce_ring_pipelined(
                ch, value, op, combine_seconds=combine_seconds
            )
        elif algorithm == "binomial":
            result = _coll.reduce_binomial_ordered(
                ch, value, op, combine_seconds=combine_seconds
            )
        else:
            raise CommunicatorError(
                f"unknown reduce algorithm {algorithm!r}; choose "
                "'auto', 'binomial', 'pipelined_ring' or 'kary'"
            )
        if root == 0:
            return result
        # Re-root: forward from rank 0 (keeps the tree order-preserving).
        if self.rank == 0:
            ch.send(root, result)
            return None
        if self.rank == root:
            return ch.recv(0)
        return None

    def allreduce(
        self,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        *,
        combine_seconds: float = 0.0,
        algorithm: str = "auto",
    ) -> Any:
        """Reduce across ranks; every rank returns the result.

        ``algorithm`` selects the schedule: ``"auto"`` (default) consults
        :mod:`repro.mpi.tuning`'s cost-model-fitted decision table and
        only ever routes commutative ops over splittable payloads away
        from recursive doubling.  Explicit choices:
        ``"recursive_doubling"`` (latency-optimal, order-preserving,
        works for any operand), ``"ring"`` (bandwidth-optimal for large
        NumPy arrays; commutative only), ``"rabenseifner"``
        (reduce-scatter + allgather; best latency/bandwidth balance for
        medium-to-large arrays; commutative only) or ``"hierarchical"``
        (topology-aware node/leader schedule; wins on multi-tier fabrics
        and degrades to recursive doubling on the flat one).
        """
        tr = self._ctx.tracer
        if not tr.enabled:
            return self._allreduce_impl(value, op, combine_seconds, algorithm)
        with tr.span(
            "allreduce", phase="collective", op=getattr(op, "name", None)
        ):
            return self._allreduce_impl(value, op, combine_seconds, algorithm)

    def _resolve_allreduce_algorithm(self, value: Any, op: Any, algorithm: str) -> str:
        if algorithm != "auto":
            return algorithm
        return self._auto_choice("allreduce", value, op)

    def _allreduce_plan(
        self,
        ch: _Channel,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        combine_seconds: float,
        algorithm: str,
    ):
        algorithm = self._resolve_allreduce_algorithm(value, op, algorithm)
        if algorithm == "hierarchical":
            # Needs the node partition, so it lives outside the flat
            # dispatch dict.  With no hierarchy (flat fabric, or all
            # members on one node) the plan degrades to the flat
            # schedules internally.
            return _coll.allreduce_hierarchical_plan(
                ch, value, op, groups=self._node_groups(),
                combine_seconds=combine_seconds,
            )
        factory = _ALLREDUCE_PLANS.get(algorithm)
        if factory is None:
            raise CommunicatorError(
                f"unknown allreduce algorithm {algorithm!r}; choose "
                "'auto', 'recursive_doubling', 'ring', 'rabenseifner' "
                "or 'hierarchical'"
            )
        return factory(ch, value, op, combine_seconds=combine_seconds)

    def _allreduce_impl(
        self,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        combine_seconds: float,
        algorithm: str,
    ) -> Any:
        ch = self._channel("allreduce")
        return _coll.run_plan(
            ch, self._allreduce_plan(ch, value, op, combine_seconds, algorithm)
        )

    def reduce_scatter(
        self,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        *,
        combine_seconds: float = 0.0,
    ) -> tuple[Any, tuple[int, int]]:
        """Element-wise reduce a NumPy array and scatter it: rank r
        returns ``(segment_r, (lo, hi))`` of the reduced array
        (MPI_Reduce_scatter_block semantics; commutative ops only).

        Moves (p-1)/p of the data per rank — the building block of the
        ring all-reduce and of bandwidth-bound aggregated reductions.
        """
        tr = self._ctx.tracer
        if not tr.enabled:
            return _coll.reduce_scatter_ring(
                self._channel("reduce_scatter"), value, op,
                combine_seconds=combine_seconds,
            )
        with tr.span(
            "reduce_scatter", phase="collective", op=getattr(op, "name", None)
        ):
            return _coll.reduce_scatter_ring(
                self._channel("reduce_scatter"), value, op,
                combine_seconds=combine_seconds,
            )

    def scan(
        self,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        *,
        combine_seconds: float = 0.0,
        algorithm: str = "auto",
    ) -> Any:
        """Inclusive prefix reduction over ranks (MPI_Scan).

        ``algorithm``: ``"auto"`` (default; table-driven), ``"binomial"``
        (simultaneous binomial, log2(p) rounds), ``"chain"`` (linear
        chain, p-1 serialized hops but minimal total traffic) or
        ``"hierarchical"`` (intra-node prefix + node-total exscan among
        node representatives; topology-aware).
        """
        tr = self._ctx.tracer
        if not tr.enabled:
            return self._scan_dispatch(
                "scan", value, op, exclusive=False, identity=None,
                combine_seconds=combine_seconds, algorithm=algorithm,
            )
        with tr.span("scan", phase="collective", op=getattr(op, "name", None)):
            return self._scan_dispatch(
                "scan", value, op, exclusive=False, identity=None,
                combine_seconds=combine_seconds, algorithm=algorithm,
            )

    def exscan(
        self,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        *,
        identity: Callable[[], Any] | None = None,
        combine_seconds: float = 0.0,
        algorithm: str = "auto",
    ) -> Any:
        """Exclusive prefix reduction over ranks (MPI_Exscan).

        Rank 0 returns ``identity()`` if given (or the op's own identity),
        else ``None`` — MPI leaves this slot undefined; the paper's
        LOCAL_XSCAN takes an identity function to define it.  See
        :meth:`scan` for ``algorithm``.
        """
        if identity is None and isinstance(op, Op):
            identity = op.identity
        tr = self._ctx.tracer
        if not tr.enabled:
            return self._scan_dispatch(
                "exscan", value, op, exclusive=True, identity=identity,
                combine_seconds=combine_seconds, algorithm=algorithm,
            )
        with tr.span("exscan", phase="collective", op=getattr(op, "name", None)):
            return self._scan_dispatch(
                "exscan", value, op, exclusive=True, identity=identity,
                combine_seconds=combine_seconds, algorithm=algorithm,
            )

    def _scan_plan(
        self,
        name: str,
        ch: _Channel,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        *,
        exclusive: bool,
        identity: Callable[[], Any] | None,
        combine_seconds: float,
        algorithm: str,
    ):
        if algorithm == "auto":
            algorithm = self._auto_choice("scan", value, op)
        if algorithm == "hierarchical":
            return _coll.scan_hierarchical_plan(
                ch, value, op, groups=self._node_groups(),
                exclusive=exclusive, identity=identity,
                combine_seconds=combine_seconds,
            )
        factory = _SCAN_PLANS.get(algorithm)
        if factory is None:
            raise CommunicatorError(
                f"unknown {name} algorithm {algorithm!r}; choose "
                "'auto', 'binomial', 'chain' or 'hierarchical'"
            )
        return factory(
            ch, value, op,
            exclusive=exclusive, identity=identity,
            combine_seconds=combine_seconds,
        )

    def _scan_dispatch(
        self,
        name: str,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        *,
        exclusive: bool,
        identity: Callable[[], Any] | None,
        combine_seconds: float,
        algorithm: str,
    ) -> Any:
        ch = self._channel(name)
        return _coll.run_plan(
            ch,
            self._scan_plan(
                name, ch, value, op, exclusive=exclusive, identity=identity,
                combine_seconds=combine_seconds, algorithm=algorithm,
            ),
        )

    # -- nonblocking collectives ----------------------------------------------

    def _issue(self, name: str, ch: _Channel, plan, finalize=None) -> _req.Request:
        tr = self._ctx.tracer
        if not tr.enabled:
            return _req.Request(self._ctx, ch, plan, name=name, finalize=finalize)
        with tr.span(name, phase="collective"):
            return _req.Request(self._ctx, ch, plan, name=name, finalize=finalize)

    def iallreduce(
        self,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        *,
        combine_seconds: float = 0.0,
        algorithm: str = "auto",
    ) -> _req.Request:
        """Nonblocking :meth:`allreduce`: issues the same schedule as the
        blocking call (first-round sends leave immediately) and returns a
        :class:`repro.mpi.request.Request`; ``wait()`` yields the value
        every rank would have gotten from ``allreduce`` — bit-identical,
        for any operator and any algorithm choice."""
        ch = self._channel("iallreduce")
        return self._issue(
            "iallreduce",
            ch,
            self._allreduce_plan(ch, value, op, combine_seconds, algorithm),
        )

    def ireduce(
        self,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        root: int = 0,
        *,
        combine_seconds: float = 0.0,
        algorithm: str = "auto",
    ) -> _req.Request:
        """Nonblocking :meth:`reduce`.  ``wait()`` returns the reduction
        on ``root`` and ``None`` elsewhere.  The availability-order
        ``"kary"`` schedule has no resumable plan form and is rejected."""
        ch = self._channel("ireduce")
        algorithm = self._resolve_reduce_algorithm(value, op, 2, algorithm)
        factory = _IREDUCE_PLANS.get(algorithm)
        if factory is None:
            raise CommunicatorError(
                f"ireduce does not support algorithm {algorithm!r}; choose "
                "'auto', 'binomial' or 'pipelined_ring'"
            )
        plan = factory(ch, value, op, combine_seconds=combine_seconds)
        if root != 0:
            plan = _reroot_plan(ch, plan, root)
        return self._issue("ireduce", ch, plan)

    def iscan(
        self,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        *,
        combine_seconds: float = 0.0,
        algorithm: str = "auto",
    ) -> _req.Request:
        """Nonblocking :meth:`scan`."""
        ch = self._channel("iscan")
        return self._issue(
            "iscan",
            ch,
            self._scan_plan(
                "iscan", ch, value, op, exclusive=False, identity=None,
                combine_seconds=combine_seconds, algorithm=algorithm,
            ),
        )

    def iexscan(
        self,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        *,
        identity: Callable[[], Any] | None = None,
        combine_seconds: float = 0.0,
        algorithm: str = "auto",
    ) -> _req.Request:
        """Nonblocking :meth:`exscan`."""
        if identity is None and isinstance(op, Op):
            identity = op.identity
        ch = self._channel("iexscan")
        return self._issue(
            "iexscan",
            ch,
            self._scan_plan(
                "iexscan", ch, value, op, exclusive=True, identity=identity,
                combine_seconds=combine_seconds, algorithm=algorithm,
            ),
        )

    def ibarrier(self) -> _req.Request:
        """Nonblocking :meth:`barrier`: ``wait()`` completes once every
        member has *entered* the barrier (they need not have waited)."""
        ch = self._channel("ibarrier")
        return self._issue("ibarrier", ch, _coll.barrier_dissemination_plan(ch))

    def progress(self) -> None:
        """Advance any outstanding nonblocking collectives through rounds
        whose messages have already been delivered (never blocks).  See
        :mod:`repro.mpi.request` for the determinism caveat."""
        eng = self._ctx._progress
        if eng is not None:
            eng.drain_delivered()

    def fused(self, **kwargs) -> "ReductionBucket":
        """A :class:`repro.core.fusion.ReductionBucket` bound to this
        communicator, usable as a context manager::

            with comm.fused() as bucket:
                a = bucket.allreduce(x, mpi.SUM)
                b = bucket.allreduce(y, mpi.MAX)
            # exiting flushed the bucket; a.result() / b.result() are ready

        Queued reductions are coalesced into shared combine waves (see
        docs/overlap.md); keyword arguments are forwarded to the bucket.
        """
        from repro.core.fusion import ReductionBucket

        return ReductionBucket(self, **kwargs)

    # -- fault tolerance (ULFM-style) -----------------------------------------

    @property
    def failed_ranks(self) -> frozenset[int]:
        """Group ranks of members the failure detector knows to be dead."""
        dead = self._ctx.world.membership.dead_snapshot()
        return frozenset(
            g for g, w in enumerate(self._members) if w in dead
        )

    @property
    def is_revoked(self) -> bool:
        """True once any member has revoked this communicator."""
        return self._ctx.world.membership.is_revoked(self._cid)

    def revoke(self) -> None:
        """Revoke this communicator (ULFM ``MPI_Comm_revoke``).

        Every member's pending and future receive on this communicator's
        tags raises :class:`~repro.errors.RevokedError` — the mechanism
        that releases survivors stuck mid-collective after a peer died,
        so they can all reach the recovery protocol.  Idempotent;
        fault-tolerance control traffic (:meth:`agree`) is exempt and
        keeps flowing.
        """
        self._ctx.world.revoke_cid(self._cid)

    def shrink(self) -> "Communicator":
        """A new communicator over the surviving members (ULFM
        ``MPI_Comm_shrink``).

        The new context id is derived from the old one plus the sorted
        set of excluded ranks, so all survivors — who share the perfect
        failure detector's view — construct matching tags without any
        extra communication.  Call only after :meth:`agree` has
        established a consistent view of the failure.
        """
        dead = self._ctx.world.membership.dead_snapshot()
        survivors = tuple(w for w in self._members if w not in dead)
        if not survivors:
            raise CommunicatorError("shrink: no surviving members")
        excluded = tuple(sorted(set(self._members) - set(survivors)))
        cid = ("shrink", self._cid, excluded)
        return Communicator(self._ctx, survivors, cid)

    def agree(self, flag: bool = True) -> bool:
        """Fault-tolerant agreement on the logical AND of ``flag`` across
        surviving members (ULFM ``MPI_Comm_agree``).

        Works on a revoked communicator (its control tags are exempt
        from revocation) and tolerates the death of the coordinating
        rank by re-electing the lowest surviving member and retrying.
        A member dying *during* the agreement forces the result to
        ``False`` — survivors will re-run recovery and observe the new
        failure.  Like ULFM, the protocol assumes failures are eventually
        quiescent; the pathological case of a coordinator dying after
        answering only some members is outside the single-failure model
        the recovery drivers are specified for (see docs/fault_model.md).
        """
        self._agree_seq += 1
        seq = self._agree_seq
        ctx = self._ctx
        membership = ctx.world.membership
        # The control tags deliberately do NOT carry a re-election
        # attempt number.  Survivors may enter the protocol with
        # different failure knowledge (several ranks dying at once —
        # e.g. a rack failure — is detected at different times), so the
        # same logical round can be attempt 0 for one member and
        # attempt 1 for another; attempt-stamped tags then never match
        # and the survivors deadlock.  Tags stay unambiguous without
        # the stamp: every re-election moves to a strictly higher
        # leader rank, so for one ``(cid, seq)`` any (member, leader)
        # pair exchanges at most one ask and one reply.
        while True:
            dead = membership.dead_snapshot()
            alive = [w for w in self._members if w not in dead]
            leader = alive[0]
            ask = ("ft", self._cid, seq)
            reply = ("ftr", self._cid, seq)
            if ctx.rank == leader:
                result = bool(flag)
                for w in alive:
                    if w == leader:
                        continue
                    try:
                        result = bool(ctx.recv_raw(w, ask)) and result
                    except RankFailedError:
                        result = False  # died mid-agreement: force recovery
                for w in alive:
                    if w != leader:
                        ctx.send_raw(w, reply, result)
                return result
            ctx.send_raw(leader, ask, bool(flag))
            try:
                return bool(ctx.recv_raw(leader, reply))
            except RankFailedError:
                continue  # leader died: re-elect and retry

    # -- communicator management ----------------------------------------------

    def dup(self) -> "Communicator":
        """A new communicator with the same group but isolated tags."""
        self._split_seq += 1
        cid = ("dup", self._cid, self._split_seq)
        return Communicator(self._ctx, self._members, cid)

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition the communicator by ``color``; order within each new
        group follows ``(key, old rank)`` (like ``MPI_Comm_split``)."""
        if key is None:
            key = self.rank
        self._split_seq += 1
        entries = self.allgather((color, key, self.rank))
        mine = sorted(
            (k, r) for (c, k, r) in entries if c == color
        )
        members = tuple(self._world_rank(r) for (_k, r) in mine)
        cid = ("split", self._cid, self._split_seq, color)
        return Communicator(self._ctx, members, cid)
