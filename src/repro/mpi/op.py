"""Reduction operations for the simulated MPI layer.

MPI defines twelve built-in operations (MPI-1 §4.9.2): ``MAX``, ``MIN``,
``SUM``, ``PROD``, ``LAND``, ``BAND``, ``LOR``, ``BOR``, ``LXOR``,
``BXOR``, ``MAXLOC`` and ``MINLOC`` — the paper cites exactly this set —
plus user-defined operations created from a combine function and a
commutativity flag (``MPI_Op_create``).  This module reproduces both.

Aggregation (the ``count`` argument of ``MPI_Reduce``) is expressed by
passing NumPy arrays: every built-in operation applies element-wise to
arrays, exactly as MPI applies the operation to each of ``count``
elements.  ``MAXLOC``/``MINLOC`` operate on ``(value, index)`` pairs or on
arrays of pairs (shape ``(n, 2)``), mirroring MPI's pair datatypes.

A combine function ``fn(a, b)`` receives the operand from the *lower*
group rank as ``a`` (MPI's ``inoutvec`` ordering), which is what makes
non-commutative user operations well-defined.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import OperatorError

__all__ = [
    "Op",
    "op_create",
    "MAX",
    "MIN",
    "SUM",
    "PROD",
    "LAND",
    "BAND",
    "LOR",
    "BOR",
    "LXOR",
    "BXOR",
    "MAXLOC",
    "MINLOC",
    "BUILTIN_OPS",
]


class Op:
    """A binary reduction operation with MPI-like metadata.

    Parameters
    ----------
    fn:
        ``fn(a, b) -> combined`` where ``a`` comes from the lower rank.
        Mutation contract (the Chapel/RSMPI ``combine(s1, s2)`` contract):
        ``fn`` may mutate and return its *left* operand, but must never
        mutate its right operand.  The collective algorithms isolate
        operands accordingly.
    commutative:
        If False, the runtime restricts itself to order-preserving
        combining schedules.
    identity:
        Optional zero-argument callable producing the operation's
        identity element; required only by exclusive scans.
    elementwise:
        True when ``fn`` applies independently per array element, so a
        NumPy-array operand may be *segmented* and the operation applied
        to each slice (MPI's derived "splittable payload" property).
        Segmenting algorithms (ring, Rabenseifner, pipelined ring) and
        the ``algorithm="auto"`` tuner only ever split payloads whose op
        declares this.  A combine over whole states (mink, meanvar, ...)
        must leave it False.
    name:
        Diagnostic name.
    """

    __slots__ = ("fn", "commutative", "identity", "elementwise", "name")

    def __init__(
        self,
        fn: Callable[[Any, Any], Any],
        *,
        commutative: bool = True,
        identity: Callable[[], Any] | None = None,
        elementwise: bool = False,
        name: str = "user_op",
    ):
        if not callable(fn):
            raise OperatorError(f"Op function must be callable, got {fn!r}")
        if identity is not None and not callable(identity):
            raise OperatorError(
                f"Op identity must be a zero-argument callable, got {identity!r}"
            )
        self.fn = fn
        self.commutative = bool(commutative)
        self.identity = identity
        self.elementwise = bool(elementwise)
        self.name = name

    def __call__(self, a: Any, b: Any) -> Any:
        return self.fn(a, b)

    def __repr__(self) -> str:
        kind = "commutative" if self.commutative else "non-commutative"
        return f"Op({self.name}, {kind})"


def op_create(
    fn: Callable[[Any, Any], Any],
    commute: bool = True,
    *,
    identity: Callable[[], Any] | None = None,
    elementwise: bool = False,
    name: str = "user_op",
) -> Op:
    """Create a user-defined operation (the analogue of ``MPI_Op_create``)."""
    return Op(
        fn, commutative=commute, identity=identity,
        elementwise=elementwise, name=name,
    )


# --------------------------------------------------------------------------
# Built-in element-wise operations.
# --------------------------------------------------------------------------


def _elementwise(np_fn, py_fn):
    def apply(a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np_fn(a, b)
        return py_fn(a, b)

    return apply


def _logical(np_fn, py_fn):
    def apply(a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np_fn(a, b)
        return py_fn(bool(a), bool(b))

    return apply


def _pair_rows(x) -> np.ndarray:
    """Normalize MAXLOC/MINLOC operands to an (n, 2) float view."""
    arr = np.asarray(x)
    if arr.ndim == 1 and arr.shape[0] == 2:
        return arr.reshape(1, 2)
    if arr.ndim == 2 and arr.shape[1] == 2:
        return arr
    raise OperatorError(
        "MAXLOC/MINLOC operands must be (value, index) pairs or (n, 2) "
        f"arrays of pairs, got shape {arr.shape}"
    )


def _loc_combine(a, b, *, want_max: bool):
    """MPI MAXLOC/MINLOC semantics: pick the extreme value; on ties pick
    the smaller index (MPI-1 §4.9.3)."""
    scalar = not (
        (isinstance(a, np.ndarray) and np.asarray(a).ndim == 2)
        or (isinstance(b, np.ndarray) and np.asarray(b).ndim == 2)
    )
    ra, rb = _pair_rows(a), _pair_rows(b)
    if ra.shape != rb.shape:
        raise OperatorError(
            f"MAXLOC/MINLOC operand shapes differ: {ra.shape} vs {rb.shape}"
        )
    va, ia = ra[:, 0], ra[:, 1]
    vb, ib = rb[:, 0], rb[:, 1]
    if want_max:
        take_a = (va > vb) | ((va == vb) & (ia <= ib))
    else:
        take_a = (va < vb) | ((va == vb) & (ia <= ib))
    out = np.where(take_a[:, None], ra, rb)
    if scalar:
        v, i = out[0]
        if isinstance(a, tuple):
            # preserve tuple form; non-finite "no location" markers
            # (e.g. +inf padding on non-participating ranks) stay floats
            return (float(v), int(i) if np.isfinite(i) else float(i))
        return out[0]
    return out


# The logical ops (LAND/LOR/LXOR) are semantically elementwise but return
# fresh bool arrays: a segmenting algorithm's in-place writeback would
# coerce the result dtype, so they do not declare ``elementwise``.
MAX = Op(_elementwise(np.maximum, max), elementwise=True, name="MAX")
MIN = Op(_elementwise(np.minimum, min), elementwise=True, name="MIN")
SUM = Op(_elementwise(np.add, lambda a, b: a + b), elementwise=True, name="SUM")
PROD = Op(_elementwise(np.multiply, lambda a, b: a * b), elementwise=True, name="PROD")
LAND = Op(_logical(np.logical_and, lambda a, b: a and b), name="LAND")
BAND = Op(_elementwise(np.bitwise_and, lambda a, b: a & b), elementwise=True, name="BAND")
LOR = Op(_logical(np.logical_or, lambda a, b: a or b), name="LOR")
BOR = Op(_elementwise(np.bitwise_or, lambda a, b: a | b), elementwise=True, name="BOR")
LXOR = Op(_logical(np.logical_xor, lambda a, b: bool(a) != bool(b)), name="LXOR")
BXOR = Op(_elementwise(np.bitwise_xor, lambda a, b: a ^ b), elementwise=True, name="BXOR")
MAXLOC = Op(lambda a, b: _loc_combine(a, b, want_max=True), name="MAXLOC")
MINLOC = Op(lambda a, b: _loc_combine(a, b, want_max=False), name="MINLOC")

#: The twelve MPI built-ins, by name.
BUILTIN_OPS: dict[str, Op] = {
    op.name: op
    for op in (MAX, MIN, SUM, PROD, LAND, BAND, LOR, BOR, LXOR, BXOR, MAXLOC, MINLOC)
}
