"""Nonblocking collectives: requests and the per-rank progress engine.

A nonblocking collective (``Communicator.ireduce/iallreduce/iscan/
iexscan/ibarrier``) builds the same communication schedule as its
blocking counterpart — a resumable *plan* generator from
:mod:`repro.mpi.collectives` — runs it eagerly up to the first receive
(so all first-round sends leave at issue time), and returns a
:class:`Request`.  A per-rank :class:`ProgressEngine` then advances the
suspended plans so that several outstanding collectives interleave their
rounds on the virtual clock instead of serializing.

Determinism contract
--------------------

Two different progress disciplines coexist, with different guarantees:

* ``wait()``/``waitall()`` drain outstanding requests with a **strict
  round-robin of blocking receives** in request-issue order.  The
  receive sequence is a pure function of the program (which collectives
  were issued, in which order), so results *and virtual times* are
  schedule-independent — the determinism contract of the whole runtime.
* ``test()`` and ``progress()`` (and the implicit drain when a rank
  blocks in an unrelated receive) only consume messages that a mailbox
  *probe* says have already been delivered.  Which messages have been
  delivered at probe time depends on real thread scheduling, so these
  paths are **result-deterministic but clock-opportunistic**: the values
  computed never change, while the virtual time at which a request
  completes may differ run to run until the next ``wait()`` barriers it.
  Opportunistic draining is disabled under lossy fault plans, where a
  probe may see raw frames the reliable-delivery layer would hold back.

Like MPI, correctness requires every rank of a communicator to issue its
collectives in the same order.  The round-robin drain is deadlock-free
for matching issue orders because every plan emits the sends of round
``t`` immediately after consuming its round ``t-1`` receive (and emits
its first-round sends at issue time); a mismatched program is caught by
the runtime's hang watchdog (``DeadlockError``) rather than silently
reordered.

Failure semantics: if a peer fail-stops while a request is outstanding,
the blocking receive inside ``wait()`` raises ``RankFailedError`` (the
membership layer wakes all blocked receivers), the request is retired,
and the error is re-raised from ``wait()`` — a dead rank never hangs the
watchdog.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import CommunicatorError
from repro.mpi.collectives import Plan

__all__ = ["Request", "ProgressEngine", "waitall"]


class Request:
    """Handle to one outstanding nonblocking collective.

    ``wait()`` blocks (driving *all* of this rank's outstanding requests
    round-robin) until this request completes and returns its result;
    ``test()`` opportunistically consumes already-delivered messages and
    reports completion without blocking.
    """

    __slots__ = (
        "name", "_ch", "_engine", "_plan", "_pending", "_done",
        "_result", "_error", "_finalize", "_t_issue", "_t_wait",
    )

    def __init__(
        self,
        ctx,
        ch,
        plan: Plan,
        *,
        name: str = "request",
        finalize: Callable[[Any], Any] | None = None,
    ):
        self.name = name
        self._ch = ch
        self._plan = plan
        self._pending: int | None = None
        self._done = False
        self._result: Any = None
        self._error: BaseException | None = None
        self._finalize = finalize
        self._t_issue = ctx.clock.t
        self._t_wait: float | None = None
        self._engine = ProgressEngine.for_context(ctx)
        m = self._engine.metrics
        if m.enabled:
            m.counter("coll.nonblocking.issued").inc()
        # Run the plan to its first receive: first-round sends are eager,
        # exactly as in the blocking algorithms.  Plans with no receives
        # (size 1, leaf ranks that only send) complete at issue and are
        # never registered with the engine.
        try:
            step = next(self._plan)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._pending = step.source
        self._engine.register(self)

    @property
    def done(self) -> bool:
        """True once the collective has completed on this rank."""
        return self._done

    def test(self) -> bool:
        """Advance outstanding requests without blocking; return whether
        this request has completed.  Result-deterministic, but *when* it
        completes on the virtual clock may vary run to run (see module
        docstring); use ``wait()`` for schedule-independent times."""
        if not self._done:
            self._engine.drain_delivered()
        if self._error is not None:
            raise self._error
        return self._done

    def wait(self) -> Any:
        """Block until this request completes; return the collective's
        result (deterministic in both value and virtual time)."""
        if not self._done:
            if self._t_wait is None:
                self._t_wait = self._engine.ctx.clock.t
            self._engine.wait(self)
        if self._error is not None:
            raise self._error
        return self._result

    def _resume(self, payload: Any) -> bool:
        """Feed one received payload into the plan; True if it finished."""
        try:
            step = self._plan.send(payload)
        except StopIteration as stop:
            self._finish(stop.value)
            return True
        self._pending = step.source
        return False

    def _finish(self, raw: Any) -> None:
        self._result = self._finalize(raw) if self._finalize is not None else raw
        self._done = True
        self._pending = None
        eng = self._engine
        m = eng.metrics
        if m.enabled:
            m.counter("coll.nonblocking.completed").inc()
            t_done = eng.ctx.clock.t
            issued = t_done - self._t_issue
            if issued > 0.0:
                # Fraction of the request's lifetime that overlapped
                # useful caller work (issue -> first wait).
                waited_from = self._t_wait if self._t_wait is not None else t_done
                ratio = min(max((waited_from - self._t_issue) / issued, 0.0), 1.0)
                m.histogram("coll.overlap.ratio").observe(ratio)

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done = True
        self._pending = None


class ProgressEngine:
    """Per-rank scheduler that advances outstanding collective plans.

    One engine per :class:`repro.runtime.world.RankContext`, created on
    the first nonblocking call and cached on the context (so every
    communicator derived from the rank shares it).
    """

    __slots__ = ("ctx", "_outstanding", "_cursor", "_in_step")

    def __init__(self, ctx):
        self.ctx = ctx
        self._outstanding: list[Request] = []
        self._cursor = 0
        self._in_step = False

    @classmethod
    def for_context(cls, ctx) -> "ProgressEngine":
        eng = ctx._progress
        if eng is None:
            eng = cls(ctx)
            ctx._progress = eng
        return eng

    @property
    def metrics(self):
        return self.ctx.tracer.metrics

    @property
    def outstanding(self) -> int:
        """Number of incomplete requests registered on this rank."""
        return len(self._outstanding)

    # -- registration ------------------------------------------------------

    def register(self, req: Request) -> None:
        self._outstanding.append(req)
        m = self.metrics
        if m.enabled:
            m.gauge("coll.outstanding").set(len(self._outstanding))

    def _retire(self, req: Request) -> None:
        try:
            idx = self._outstanding.index(req)
        except ValueError:
            return
        self._outstanding.pop(idx)
        if idx < self._cursor:
            self._cursor -= 1
        if self._cursor >= len(self._outstanding):
            self._cursor = 0
        m = self.metrics
        if m.enabled:
            m.gauge("coll.outstanding").set(len(self._outstanding))

    # -- deterministic (blocking) progress ---------------------------------

    def step(self) -> None:
        """One blocking receive for the request at the round-robin cursor.

        The cursor order is a pure function of request issue order, so
        repeated ``step()`` calls drain outstanding requests with a
        schedule-independent receive sequence.
        """
        if not self._outstanding:
            raise CommunicatorError("progress engine has no outstanding requests")
        req = self._outstanding[self._cursor]
        self._in_step = True
        try:
            payload = req._ch.recv(req._pending)
        except BaseException as exc:
            req._fail(exc)
            self._retire(req)
            raise
        finally:
            self._in_step = False
        if req._resume(payload):
            self._retire(req)
        else:
            self._cursor = (self._cursor + 1) % len(self._outstanding)

    def wait(self, req: Request) -> None:
        """Drive all outstanding requests round-robin until ``req`` completes."""
        while not req._done:
            if not self._outstanding:
                raise CommunicatorError(
                    f"request {req.name!r} incomplete but not registered"
                )
            self.step()

    # -- opportunistic (non-blocking) progress -----------------------------

    def on_block(self) -> None:
        """Hook from ``RankContext.collect_envelope``: the rank is about
        to block in an unrelated receive, so consume whatever rounds of
        outstanding requests have already been delivered."""
        if self._in_step or not self._outstanding:
            return
        self.drain_delivered()

    def drain_delivered(self) -> None:
        """Advance every outstanding request through all rounds whose
        message a mailbox probe shows as already delivered.

        Never blocks.  Result-deterministic; the virtual completion time
        depends on real thread progress (see module docstring).  Disabled
        under lossy fault plans: a probe can see raw frames (duplicates,
        reordered sequence numbers) that the reliable-delivery layer
        would hold back, so "delivered" does not imply "receivable".
        """
        if self._in_step or not self._outstanding:
            return
        inj = self.ctx.world.injector
        if inj is not None and inj.lossy:
            return
        self._in_step = True
        try:
            progressed = True
            while progressed:
                progressed = False
                for req in list(self._outstanding):
                    while not req._done and req._ch.probe(req._pending):
                        payload = req._ch.recv(req._pending)
                        if req._resume(payload):
                            self._retire(req)
                        progressed = True
        finally:
            self._in_step = False


def waitall(requests: Iterable[Request]) -> list[Any]:
    """Wait on each request in order; return their results in order.

    The per-rank engine drains *all* outstanding requests round-robin
    while any ``wait()`` blocks, so the completion schedule interleaves
    every pending collective regardless of the order given here.
    """
    return [req.wait() for req in requests]
