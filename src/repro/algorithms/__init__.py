"""Algorithms built on scans — Blelloch's vector-model classics.

The paper closes by noting that generalized reduce/scan "make the full
power of the parallel prefix technique available"; its reference [3]
(Blelloch) builds whole algorithm libraries on exactly that power.
This package provides the canonical examples over the library's own
primitives:

* :func:`stream_compact` — keep flagged elements, rebalanced into block
  order (one aggregated exscan + one all-to-all);
* :func:`split_by_flag` — Blelloch's stable *split*: 0-flagged elements
  before 1-flagged, order preserved within each side;
* :func:`radix_sort` — repeated split by bit: a globally stable sort
  made of nothing but scans and routing.
"""

from repro.algorithms.scan_based import (
    radix_sort,
    sample_sort,
    split_by_flag,
    stream_compact,
)

__all__ = ["stream_compact", "split_by_flag", "radix_sort", "sample_sort"]
