"""Scan-based data movement: compact, split, radix sort.

All three follow the same two-beat rhythm Blelloch's vector model made
famous: **scan to find out where everything goes, then route it there.**
The scans are the library's own aggregated exclusive scans (one small
vector per tree edge); routing is one all-to-all.

Every function takes and returns *block-distributed* local arrays: the
concatenation of the returned blocks in rank order is the conceptual
result array.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.arrays.distribution import BlockDist
from repro.errors import ReproError
from repro.mpi.comm import Communicator

__all__ = ["stream_compact", "split_by_flag", "radix_sort", "sample_sort"]


def _route(
    comm: Communicator,
    values: np.ndarray,
    dest: np.ndarray,
    total: int,
) -> np.ndarray:
    """Send each ``values[i]`` to global position ``dest[i]`` of a
    ``total``-element block-distributed array; returns this rank's block.
    One all-to-all."""
    p = comm.size
    dist = BlockDist(total, p)
    starts = np.array(
        [dist.bounds(r)[0] for r in range(p)] + [total], dtype=np.int64
    )
    owner = np.searchsorted(starts, dest, side="right") - 1
    outgoing = []
    for r in range(p):
        sel = owner == r
        outgoing.append((dest[sel] - starts[r], values[sel]))
    incoming = comm.alltoall(outgoing)
    out = np.empty(dist.local_count(comm.rank), dtype=values.dtype)
    for offsets, vals in incoming:
        out[offsets] = vals
    return out


def stream_compact(
    comm: Communicator,
    local_values: np.ndarray,
    local_mask: np.ndarray,
) -> np.ndarray:
    """Keep the flagged elements, in order, rebalanced into blocks.

    The classic filter-via-scan: each kept element's global position is
    the exclusive scan of the keep-counts; one exscan + one allreduce +
    one all-to-all.
    """
    local_values = np.asarray(local_values)
    local_mask = np.asarray(local_mask, dtype=bool)
    if local_values.shape != local_mask.shape:
        raise ReproError(
            f"stream_compact: values {local_values.shape} and mask "
            f"{local_mask.shape} differ"
        )
    kept = local_values[local_mask]
    my_count = len(kept)
    offset = comm.exscan(my_count, mpi.SUM, identity=lambda: 0)
    total = comm.allreduce(my_count, mpi.SUM)
    if total == 0:
        return local_values[:0]
    dest = offset + np.arange(my_count, dtype=np.int64)
    return _route(comm, kept, dest, int(total))


def split_by_flag(
    comm: Communicator,
    local_values: np.ndarray,
    local_flags: np.ndarray,
) -> np.ndarray:
    """Blelloch's stable *split*: all 0-flagged elements (in order)
    followed by all 1-flagged elements (in order), block-distributed.

    One **aggregated** exscan of the (zeros, ones) count pair — the §2.1
    trick keeping the two scans in one message — one aggregated
    allreduce for the totals, one all-to-all.
    """
    local_values = np.asarray(local_values)
    flags = np.asarray(local_flags, dtype=bool)
    if local_values.shape != flags.shape:
        raise ReproError(
            f"split_by_flag: values {local_values.shape} and flags "
            f"{flags.shape} differ"
        )
    n0_local = int(np.count_nonzero(~flags))
    n1_local = int(len(flags) - n0_local)
    counts = np.array([n0_local, n1_local], dtype=np.int64)
    before = comm.exscan(
        counts, mpi.SUM, identity=lambda: np.zeros(2, dtype=np.int64)
    )
    totals = comm.allreduce(counts, mpi.SUM)
    total = int(totals.sum())
    if total == 0:
        return local_values[:0]
    dest = np.empty(len(flags), dtype=np.int64)
    zero_pos = np.cumsum(~flags) - 1  # local rank among my zeros
    one_pos = np.cumsum(flags) - 1
    dest[~flags] = before[0] + zero_pos[~flags]
    dest[flags] = int(totals[0]) + before[1] + one_pos[flags]
    return _route(comm, local_values, dest, total)


def radix_sort(
    comm: Communicator,
    local_keys: np.ndarray,
    *,
    bits: int | None = None,
) -> np.ndarray:
    """LSD radix sort of non-negative integer keys: one stable
    :func:`split_by_flag` per bit.  Nothing but scans and routing — the
    textbook demonstration that scan is a sufficient primitive for
    sorting.

    ``bits`` defaults to the width of the global maximum key.
    """
    keys = np.asarray(local_keys)
    if keys.size and keys.min() < 0:
        raise ReproError("radix_sort requires non-negative keys")
    if bits is None:
        local_max = int(keys.max()) if keys.size else 0
        global_max = int(comm.allreduce(local_max, mpi.MAX))
        bits = max(1, global_max.bit_length())
    for b in range(bits):
        flags = (keys >> b) & 1
        keys = split_by_flag(comm, keys, flags.astype(bool))
    return keys


def sample_sort(
    comm: Communicator,
    local_values: np.ndarray,
    *,
    oversample: int = 8,
) -> np.ndarray:
    """Sample sort: the general-purpose distributed sort.

    Where :func:`radix_sort` needs integer keys and one pass per bit,
    sample sort handles any ordered dtype in a constant number of
    communication rounds: sort locally, choose p-1 splitters from an
    allgathered regular sample, route each element to its splitter
    bucket (one all-to-all), and merge locally.  Output blocks follow
    rank order but are only approximately balanced — the classic
    trade-off against the bucket sort's count-based balancing.
    """
    local = np.sort(np.asarray(local_values))
    p = comm.size
    if p == 1:
        return local
    # regular sample of my sorted block
    n_local = len(local)
    take = min(oversample, n_local)
    if take > 0:
        idx = (np.arange(take) * n_local) // take + (n_local // (2 * take))
        np.clip(idx, 0, n_local - 1, out=idx)
        my_sample = local[idx]
    else:
        my_sample = local[:0]
    all_samples = np.sort(np.concatenate(comm.allgather(my_sample)))
    if len(all_samples) == 0:
        return local  # nothing anywhere
    # p-1 splitters at regular positions of the gathered sample
    pos = (np.arange(1, p) * len(all_samples)) // p
    splitters = all_samples[pos]
    # partition and route
    cuts = np.searchsorted(local, splitters, side="right")
    pieces = np.split(local, cuts)
    incoming = comm.alltoall(pieces)
    merged = np.sort(np.concatenate(incoming))
    return merged
