"""MPI call census over the NAS kernels.

The paper motivates reductions with a statistic: "In the NAS Parallel
Benchmarks (NPB) version 3.2, nearly 9% of the MPI calls are
reductions."  We reproduce the *methodology* on our own NAS kernels:
every communicator records its collective and point-to-point calls in
its trace, and :func:`census` classifies them.

Two views are reported:

* **static** — distinct call sites, which is how such statistics are
  usually counted over a source tree;
* **dynamic** — executed calls of a run (per rank), which weights the
  loops.

The MPI ZRAN3 variant alone runs 40 reductions against a handful of
other calls — the imbalance the paper's Figure 3 exploits.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.runtime.trace import REDUCTION_CALLS, Trace, merge_traces

__all__ = ["CallCensus", "census"]


@dataclass(frozen=True)
class CallCensus:
    """Classified communication-call counts."""

    collective_calls: dict[str, int]
    p2p_calls: dict[str, int]

    @property
    def n_total(self) -> int:
        return sum(self.collective_calls.values()) + sum(self.p2p_calls.values())

    @property
    def n_reductions(self) -> int:
        return sum(
            c for name, c in self.collective_calls.items()
            if name in REDUCTION_CALLS
        )

    @property
    def reduction_fraction(self) -> float:
        total = self.n_total
        return self.n_reductions / total if total else 0.0

    def format(self, title: str = "MPI call census") -> str:
        lines = [title, "-" * len(title)]
        for name, count in sorted(
            self.collective_calls.items(), key=lambda kv: -kv[1]
        ):
            tag = "  <- reduction" if name in REDUCTION_CALLS else ""
            lines.append(f"  {name:<12s} {count:8d}{tag}")
        for name, count in sorted(self.p2p_calls.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {name:<12s} {count:8d}")
        lines.append(
            f"  reductions: {self.n_reductions}/{self.n_total} calls "
            f"= {100.0 * self.reduction_fraction:.1f}%"
        )
        return "\n".join(lines)


def census(traces: list[Trace], *, per_rank: bool = True) -> CallCensus:
    """Classify the communication calls recorded in an SPMD run's traces.

    ``per_rank=True`` (default) divides by the rank count, approximating
    the program's call profile (every rank executes the same SPMD call
    sites); ``False`` counts raw totals.
    """
    merged = merge_traces(traces)
    n = len(traces) if per_rank and traces else 1
    coll = Counter(
        {name: round(c / n) for name, c in merged.collective_calls.items()}
    )
    p2p = Counter({name: round(c / n) for name, c in merged.p2p_calls.items()})
    return CallCensus(dict(coll), dict(p2p))
