"""NAS EP (Embarrassingly Parallel) — gaussian deviates by acceptance.

EP generates ``n`` pseudo-random coordinate pairs in (-1, 1)², accepts
those inside the unit circle, converts them to gaussian deviates via the
Marsaglia polar method, and reports the sums of the deviates plus a
count of them per concentric square annulus::

    t = x² + y²;  if t <= 1:
        f = sqrt(-2 ln t / t);  X = x f;  Y = y f
        sx += X;  sy += Y;  q[floor(max(|X|, |Y|))] += 1

Communication-wise EP is the anti-MG: a handful of reductions and
nothing else — which is why it rounds out the call census — and its
entire result is *one fused reduction* in the global-view formulation:

* :func:`ep_mpi` — the NPB idiom: vectorized local loop, then three
  all-reduces (sx, sy, q);
* :func:`ep_rsmpi` — a single :class:`EPOp` global-view reduction whose
  accumulate phase performs the gaussian transformation itself (the
  input elements are the *raw* coordinate pairs).

Both produce bit-identical results for any rank count (each rank
generates its slice of the shared randlc stream by jump-ahead).
Default classes are scaled (the paper-era classes run 2^28+ pairs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import mpi
from repro.core.operator import ReduceScanOp
from repro.core.reduce import global_reduce
from repro.errors import ReproError
from repro.mpi.comm import Communicator
from repro.util.rng import randlc_array
from repro.util.sizing import TransferSized

__all__ = ["EPClass", "EP_CLASSES", "EP_CLASSES_FULL", "ep_class",
           "EPResult", "EPOp", "ep_mpi", "ep_rsmpi"]

#: NPB EP seed (271828183 — digits of e).
EP_SEED = 271828183

#: Number of annulus bins.
NQ = 10


@dataclass(frozen=True)
class EPClass:
    name: str
    n_pairs: int


EP_CLASSES_FULL = {
    "S": EPClass("S", 1 << 24),
    "W": EPClass("W", 1 << 25),
    "A": EPClass("A", 1 << 28),
    "B": EPClass("B", 1 << 30),
    "C": EPClass("C", 1 << 32),
}

EP_CLASSES = {
    "S": EPClass("S", 1 << 16),
    "W": EPClass("W", 1 << 18),
    "A": EPClass("A", 1 << 20),
    "B": EPClass("B", 1 << 22),
    "C": EPClass("C", 1 << 24),
}


def ep_class(name: str, *, full: bool = False) -> EPClass:
    table = EP_CLASSES_FULL if full else EP_CLASSES
    try:
        return table[name.upper()]
    except KeyError:
        raise ReproError(
            f"unknown EP class {name!r}; choose from {sorted(table)}"
        ) from None


@dataclass
class EPResult:
    sx: float
    sy: float
    q: np.ndarray  # annulus counts, length NQ
    n_accepted: int

    def close_to(self, other: "EPResult", tol: float = 1e-9) -> bool:
        return (
            abs(self.sx - other.sx) <= tol * max(1.0, abs(other.sx))
            and abs(self.sy - other.sy) <= tol * max(1.0, abs(other.sy))
            and np.array_equal(self.q, other.q)
            and self.n_accepted == other.n_accepted
        )


def _local_pairs(comm: Communicator, cls: EPClass) -> np.ndarray:
    """This rank's (count, 2) slice of the global pair stream."""
    n, p, r = cls.n_pairs, comm.size, comm.rank
    base, extra = divmod(n, p)
    start = r * base + min(r, extra)
    count = base + (1 if r < extra else 0)
    raw = randlc_array(2 * count, seed=EP_SEED, skip=2 * start)
    return 2.0 * raw.reshape(count, 2) - 1.0


def _transform(pairs: np.ndarray):
    """Accept-and-transform: returns (X, Y, bins) of accepted pairs."""
    if len(pairs) == 0:
        empty = np.empty(0)
        return empty, empty, np.empty(0, dtype=np.int64)
    x, y = pairs[:, 0], pairs[:, 1]
    t = x * x + y * y
    ok = (t <= 1.0) & (t > 0.0)
    xo, yo, to = x[ok], y[ok], t[ok]
    f = np.sqrt(-2.0 * np.log(to) / to)
    gx, gy = xo * f, yo * f
    bins = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
    np.clip(bins, 0, NQ - 1, out=bins)
    return gx, gy, bins


class _EPState(TransferSized):
    __slots__ = ("sx", "sy", "q", "n")

    def __init__(self):
        self.sx = 0.0
        self.sy = 0.0
        self.q = np.zeros(NQ, dtype=np.int64)
        self.n = 0

    def transfer_nbytes(self) -> int:
        return 16 + int(self.q.nbytes) + 8


class EPOp(ReduceScanOp):
    """The whole EP tally as one global-view operator.

    Input elements are *raw* (x, y) pairs; the accumulate phase performs
    acceptance and the gaussian transform (the paper's point that the
    per-processor code belongs inside the abstraction); the combine
    phase adds tallies.
    """

    commutative = True

    @property
    def name(self) -> str:
        return "ep_tally"

    def ident(self) -> _EPState:
        return _EPState()

    def accum(self, state: _EPState, pair) -> _EPState:
        return self.accum_block(state, np.asarray([pair]))

    def accum_block(self, state: _EPState, values) -> _EPState:
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return state
        gx, gy, bins = _transform(arr.reshape(-1, 2))
        state.sx += float(gx.sum())
        state.sy += float(gy.sum())
        state.q += np.bincount(bins, minlength=NQ)
        state.n += len(gx)
        return state

    def combine(self, s1: _EPState, s2: _EPState) -> _EPState:
        s1.sx += s2.sx
        s1.sy += s2.sy
        s1.q += s2.q
        s1.n += s2.n
        return s1

    def red_gen(self, state: _EPState) -> EPResult:
        return EPResult(state.sx, state.sy, state.q.copy(), state.n)


def ep_mpi(
    comm: Communicator,
    cls: EPClass,
    *,
    compute_rate: str | None = None,
) -> EPResult:
    """The NPB idiom: local tally, then three all-reduces."""
    pairs = _local_pairs(comm, cls)
    gx, gy, bins = _transform(pairs)
    if compute_rate is not None:
        comm.charge_elements(compute_rate, len(pairs), "ep:transform")
    sx = comm.allreduce(float(gx.sum()), mpi.SUM)
    sy = comm.allreduce(float(gy.sum()), mpi.SUM)
    q = comm.allreduce(np.bincount(bins, minlength=NQ), mpi.SUM)
    # like NPB: the accepted count is the sum of the annulus counts,
    # no fourth reduction needed
    return EPResult(sx, sy, q, int(q.sum()))


def ep_rsmpi(
    comm: Communicator,
    cls: EPClass,
    *,
    compute_rate: str | None = None,
) -> EPResult:
    """The global-view idiom: the whole tally is one fused reduction."""
    pairs = _local_pairs(comm, cls)
    return global_reduce(comm, EPOp(), pairs, accum_rate=compute_rate)
