"""3-D block decomposition and randlc grid fill for NAS MG's ZRAN3.

The grid is distributed over a 3-D process grid (``MPI_Dims_create``
style factoring).  ZRAN3 fills the array with the shared ``randlc``
stream in Fortran element order (x fastest), which we reproduce exactly:
each rank generates its own sub-block line by line using the generator's
jump-ahead, so the grid contents are bit-identical for any process
count — the property that lets the 40-reduction and 1-reduction variants
be checked against each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DistributionError
from repro.mpi.topology import dims_create
from repro.util.rng import RANDLC_SEED, randlc_array

__all__ = ["Block3D", "fill_zran_block"]


def _block_bounds(n: int, parts: int, idx: int) -> tuple[int, int]:
    base, extra = divmod(n, parts)
    lo = idx * base + min(idx, extra)
    return lo, lo + base + (1 if idx < extra else 0)


@dataclass(frozen=True)
class Block3D:
    """One rank's sub-block of an (nx, ny, nz) grid."""

    nx: int
    ny: int
    nz: int
    px: int
    py: int
    pz: int
    rank: int

    @classmethod
    def create(cls, nx: int, ny: int, nz: int, nprocs: int, rank: int) -> "Block3D":
        pz, py, px = dims_create(nprocs, 3)  # largest factor on z
        if px * py * pz != nprocs:
            raise DistributionError(  # pragma: no cover - dims_create exact
                f"process grid {px}x{py}x{pz} != {nprocs}"
            )
        return cls(nx, ny, nz, px, py, pz, rank)

    @property
    def coords(self) -> tuple[int, int, int]:
        """This rank's (cx, cy, cz) in the process grid (x fastest)."""
        cx = self.rank % self.px
        cy = (self.rank // self.px) % self.py
        cz = self.rank // (self.px * self.py)
        return cx, cy, cz

    @property
    def bounds(self) -> tuple[tuple[int, int], tuple[int, int], tuple[int, int]]:
        cx, cy, cz = self.coords
        return (
            _block_bounds(self.nx, self.px, cx),
            _block_bounds(self.ny, self.py, cy),
            _block_bounds(self.nz, self.pz, cz),
        )

    @property
    def shape(self) -> tuple[int, int, int]:
        (x0, x1), (y0, y1), (z0, z1) = self.bounds
        return (x1 - x0, y1 - y0, z1 - z0)

    @property
    def n_local(self) -> int:
        sx, sy, sz = self.shape
        return sx * sy * sz

    def global_linear(self, ix: int, iy: int, iz: int) -> int:
        """Fortran-order linear index of a *global* coordinate."""
        return ix + self.nx * (iy + self.ny * iz)

    def local_positions(self) -> np.ndarray:
        """Global linear indices of this rank's elements, in local
        (x-fastest) storage order."""
        (x0, x1), (y0, y1), (z0, z1) = self.bounds
        ix = np.arange(x0, x1)
        iy = np.arange(y0, y1)
        iz = np.arange(z0, z1)
        # local order: x fastest, then y, then z
        return (
            ix[:, None, None]
            + self.nx * (iy[None, :, None] + self.ny * iz[None, None, :])
        ).ravel(order="F")


def fill_zran_block(block: Block3D, *, seed: int = RANDLC_SEED) -> np.ndarray:
    """This rank's grid values, flat in local x-fastest order.

    Generates exactly the rank's slice of the global randlc stream (one
    jump-ahead per (y, z) line), bit-identical to a serial fill.
    """
    (x0, x1), (y0, y1), (z0, z1) = block.bounds
    sx = x1 - x0
    # Fast path: a full x-y slab owns a contiguous run of the stream
    # (common — dims_create puts the largest process-grid factor on z).
    if sx == block.nx and (y1 - y0) == block.ny:
        skip = block.global_linear(x0, y0, z0)
        return randlc_array(block.n_local, seed=seed, skip=skip)
    out = np.empty(block.n_local, dtype=np.float64)
    pos = 0
    for iz in range(z0, z1):
        for iy in range(y0, y1):
            skip = block.global_linear(x0, iy, iz)
            out[pos : pos + sx] = randlc_array(sx, seed=seed, skip=skip)
            pos += sx
    return out
