"""The MG halo exchange (``comm3``) and residual norm (``norm2u3``).

NAS MG's communication is dominated by point-to-point face exchanges:
every smoothing/restriction/prolongation step calls ``comm3``, which
swaps the six boundary faces of each rank's sub-block with its neighbors
(periodic in all three dimensions).  Reductions appear only in the
per-iteration residual norm (``norm2u3``: one all-reduce) and in the
initialization (ZRAN3's extrema search).

This is the part of MG that makes the paper's "nearly 9% of the MPI
calls are reductions" statistic meaningful: reductions are a small
minority of calls — the halo traffic dwarfs them — yet they are the
calls the paper's abstraction improves.  The call-census benchmark runs
a representative number of V-cycle communication rounds through these
routines to reproduce the claim's denominator.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.mpi.comm import Communicator
from repro.nas.mg.grid import Block3D

__all__ = ["comm3", "norm2u3", "vcycle_communication_round"]


def _neighbor(block: Block3D, dim: int, direction: int) -> int:
    """Rank of the periodic neighbor along ``dim`` (0=x,1=y,2=z)."""
    cx, cy, cz = block.coords
    coords = [cx, cy, cz]
    extents = [block.px, block.py, block.pz]
    coords[dim] = (coords[dim] + direction) % extents[dim]
    return coords[0] + block.px * (coords[1] + block.py * coords[2])


def comm3(comm: Communicator, block: Block3D, u: np.ndarray) -> np.ndarray:
    """Exchange the six faces of the local block (periodic).

    ``u`` is the local field flat in x-fastest order; the returned array
    is ``u`` unchanged (this reproduction tracks the *communication
    pattern*; the ghost values themselves are not consumed by ZRAN3).
    Six sendrecv pairs per call, exactly like the Fortran ``comm3``'s
    ``give3``/``take3`` per axis.
    """
    sx, sy, sz = block.shape
    field = u.reshape((sz, sy, sx))  # z, y, x — x fastest
    faces = {
        (0, +1): field[:, :, -1], (0, -1): field[:, :, 0],
        (1, +1): field[:, -1, :], (1, -1): field[:, 0, :],
        (2, +1): field[-1, :, :], (2, -1): field[0, :, :],
    }
    for dim in range(3):
        for direction in (+1, -1):
            dest = _neighbor(block, dim, direction)
            src = _neighbor(block, dim, -direction)
            face = np.ascontiguousarray(faces[(dim, direction)])
            comm.sendrecv(
                face, dest=dest, source=src,
                sendtag=100 + dim * 2 + (direction > 0),
                recvtag=100 + dim * 2 + (direction > 0),
            )
    return u


def norm2u3(comm: Communicator, block: Block3D, u: np.ndarray) -> tuple[float, float]:
    """MG's residual norms: L2 and max-abs, each one all-reduce."""
    local_sq = float(np.square(u).sum())
    local_max = float(np.abs(u).max()) if len(u) else 0.0
    total_sq = comm.allreduce(local_sq, mpi.SUM)
    total_max = comm.allreduce(local_max, mpi.MAX)
    n = block.nx * block.ny * block.nz
    return float(np.sqrt(total_sq / n)), total_max


def vcycle_communication_round(
    comm: Communicator, block: Block3D, u: np.ndarray, *, comm3_calls: int = 10
) -> tuple[float, float]:
    """One MG iteration's communication skeleton: ``comm3_calls`` halo
    exchanges (the Fortran V-cycle calls comm3 at every level on the way
    down and up; ~10 is representative for a 5-level cycle) followed by
    the residual-norm reduction."""
    for _ in range(comm3_calls):
        comm3(comm, block, u)
    return norm2u3(comm, block, u)
