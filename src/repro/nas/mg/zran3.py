"""The ZRAN3 initialization of NAS MG — the subject of Figure 3.

"In the initialization of the NAS MG benchmark, an array is filled with
random numbers.  The ten largest numbers and their locations ... along
with the ten smallest numbers and their locations ... are then
identified.  These positions are then filled with positive ones and
negative ones respectively, and the rest of the array is filled with
zeros."

Two implementations:

* :func:`zran3_mpi` — the F+MPI idiom: "this portion of the computation
  ... is implemented with **forty reductions**."  For each of the 10
  largest and 10 smallest, the original finds the global extreme (one
  all-reduce) and then resolves its owner/position (a second all-reduce
  of a (flag, position) pair), re-scanning the masked local block every
  iteration: 20 extrema x 2 all-reduces = 40 reductions.

* :func:`zran3_rsmpi` — the F+RSMPI idiom: **one** user-defined
  reduction "similar to the mink and mini reductions" — our
  :class:`~repro.ops.extrema.ExtremaKLocOp` — in a single accumulate
  pass and a single combine tree.

Both return identical sparse grids (tested), because both resolve value
ties toward the smaller global position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import mpi
from repro.core.reduce import global_reduce
from repro.mpi.comm import Communicator
from repro.nas.common import MGClass
from repro.nas.mg.grid import Block3D, fill_zran_block
from repro.ops.extrema import ExtremaKLocOp
from repro.util.rng import RANDLC_SEED

__all__ = ["Zran3Result", "zran3_mpi", "zran3_mpi_fused", "zran3_rsmpi", "MM"]

#: Number of extrema of each kind ZRAN3 plants (NPB: mm = 10).
MM = 10


@dataclass
class Zran3Result:
    """One rank's outcome: its sparse block plus the chosen extrema."""

    local: np.ndarray  # this rank's block: zeros with +-1 at the extrema
    top_positions: np.ndarray  # global linear positions of the +1s (desc value)
    bot_positions: np.ndarray  # global linear positions of the -1s (asc value)
    t_fill_end: float  # virtual time after the grid fill
    t_done: float  # virtual time after planting the ones


def _setup(
    comm: Communicator, cls: MGClass, seed: int, fill_rate: str | None
) -> tuple[Block3D, np.ndarray, np.ndarray]:
    block = Block3D.create(cls.nx, cls.ny, cls.nz, comm.size, comm.rank)
    values = fill_zran_block(block, seed=seed)
    if fill_rate is not None:
        comm.charge_elements(fill_rate, len(values), "mg:fill")
    positions = block.local_positions()
    return block, values, positions


def _plant(
    values_shape: int,
    positions: np.ndarray,
    top_pos: np.ndarray,
    bot_pos: np.ndarray,
) -> np.ndarray:
    """Zero block with +1 at owned top positions, -1 at owned bottoms."""
    out = np.zeros(values_shape, dtype=np.float64)
    pos_index = {int(g): i for i, g in enumerate(positions)}
    for g in top_pos:
        i = pos_index.get(int(g))
        if i is not None:
            out[i] = 1.0
    for g in bot_pos:
        i = pos_index.get(int(g))
        if i is not None:
            out[i] = -1.0
    return out


def zran3_mpi(
    comm: Communicator,
    cls: MGClass,
    *,
    seed: int = RANDLC_SEED,
    fill_rate: str | None = None,
    scan_rate: str | None = None,
) -> Zran3Result:
    """The forty-reduction F+MPI variant.

    ``scan_rate`` charges the per-iteration masked re-scan of the local
    block (the repeated traversal the paper's Figure 3 attributes the
    overhead to, alongside the 40 log-depth reductions).
    """
    block, values, positions = _setup(comm, cls, seed, fill_rate)
    t_fill_end = comm.context.clock.t

    chosen = np.zeros(len(values), dtype=bool)
    top_positions = np.empty(MM, dtype=np.int64)
    bot_positions = np.empty(MM, dtype=np.int64)

    for kind, out_positions in (("top", top_positions), ("bot", bot_positions)):
        chosen[:] = False
        for j in range(MM):
            # local candidate extreme over the not-yet-chosen elements
            masked = np.where(chosen, -np.inf if kind == "top" else np.inf, values)
            if scan_rate is not None:
                comm.charge_elements(scan_rate, len(values), "mg:rescan")
            if len(values) > 0:
                li = int(np.argmax(masked)) if kind == "top" else int(np.argmin(masked))
                lv = float(masked[li])
            else:
                li, lv = -1, (-np.inf if kind == "top" else np.inf)
            # reduction 1: the global extreme value
            op1 = mpi.MAX if kind == "top" else mpi.MIN
            gv = float(comm.allreduce(lv, op1))
            # reduction 2: smallest global position holding that value
            if len(values) > 0 and lv == gv:
                holders = np.where(masked == gv)[0]
                my_pos = float(positions[holders].min())
            else:
                my_pos = np.inf
            gpos = comm.allreduce((0.0, my_pos), mpi.MINLOC)
            gp = int(gpos[1])
            out_positions[j] = gp
            # mark locally if we own it
            if len(values) > 0:
                local_hit = np.where(positions == gp)[0]
                if len(local_hit):
                    chosen[local_hit[0]] = True

    local = _plant(len(values), positions, top_positions, bot_positions)
    return Zran3Result(
        local=local,
        top_positions=top_positions,
        bot_positions=bot_positions,
        t_fill_end=t_fill_end,
        t_done=comm.context.clock.t,
    )


def zran3_mpi_fused(
    comm: Communicator,
    cls: MGClass,
    *,
    seed: int = RANDLC_SEED,
    fill_rate: str | None = None,
    scan_rate: str | None = None,
) -> Zran3Result:
    """The F+MPI idiom with **bucketed fusion**: the top-10 and bottom-10
    searches run side by side, so each round's MAX and MIN ride one fused
    wave and the two MINLOC position resolutions ride another — twenty
    collectives instead of forty, bit-identical positions (the two search
    chains never interact, and fusion preserves each member's combine
    order)."""
    block, values, positions = _setup(comm, cls, seed, fill_rate)
    t_fill_end = comm.context.clock.t

    chosen_t = np.zeros(len(values), dtype=bool)
    chosen_b = np.zeros(len(values), dtype=bool)
    top_positions = np.empty(MM, dtype=np.int64)
    bot_positions = np.empty(MM, dtype=np.int64)

    for j in range(MM):
        masked_t = np.where(chosen_t, -np.inf, values)
        masked_b = np.where(chosen_b, np.inf, values)
        if scan_rate is not None:
            comm.charge_elements(scan_rate, 2 * len(values), "mg:rescan")
        if len(values) > 0:
            lv_t = float(masked_t[np.argmax(masked_t)])
            lv_b = float(masked_b[np.argmin(masked_b)])
        else:
            lv_t, lv_b = -np.inf, np.inf
        # fused wave 1: the two global extreme values
        with comm.fused() as bucket:
            h_max = bucket.allreduce(lv_t, mpi.MAX)
            h_min = bucket.allreduce(lv_b, mpi.MIN)
        gv_t, gv_b = float(h_max.result()), float(h_min.result())
        # fused wave 2: the two owner/position resolutions
        pos_t = (
            float(positions[np.where(masked_t == gv_t)[0]].min())
            if len(values) > 0 and lv_t == gv_t else np.inf
        )
        pos_b = (
            float(positions[np.where(masked_b == gv_b)[0]].min())
            if len(values) > 0 and lv_b == gv_b else np.inf
        )
        with comm.fused() as bucket:
            h_pt = bucket.allreduce((0.0, pos_t), mpi.MINLOC)
            h_pb = bucket.allreduce((0.0, pos_b), mpi.MINLOC)
        gp_t, gp_b = int(h_pt.result()[1]), int(h_pb.result()[1])
        top_positions[j] = gp_t
        bot_positions[j] = gp_b
        if len(values) > 0:
            hit = np.where(positions == gp_t)[0]
            if len(hit):
                chosen_t[hit[0]] = True
            hit = np.where(positions == gp_b)[0]
            if len(hit):
                chosen_b[hit[0]] = True

    local = _plant(len(values), positions, top_positions, bot_positions)
    return Zran3Result(
        local=local,
        top_positions=top_positions,
        bot_positions=bot_positions,
        t_fill_end=t_fill_end,
        t_done=comm.context.clock.t,
    )


def zran3_rsmpi(
    comm: Communicator,
    cls: MGClass,
    *,
    seed: int = RANDLC_SEED,
    fill_rate: str | None = None,
    scan_rate: str | None = None,
) -> Zran3Result:
    """The one-reduction F+RSMPI variant: a single ``extrema`` operator
    pass (accumulate once, combine once)."""
    block, values, positions = _setup(comm, cls, seed, fill_rate)
    t_fill_end = comm.context.clock.t

    pairs = np.column_stack([values, positions.astype(np.float64)])
    top, bot = global_reduce(
        comm,
        ExtremaKLocOp(MM),
        pairs,
        accum_rate=scan_rate,
    )
    top_positions = top[:, 1].astype(np.int64)
    bot_positions = bot[:, 1].astype(np.int64)

    local = _plant(len(values), positions, top_positions, bot_positions)
    return Zran3Result(
        local=local,
        top_positions=top_positions,
        bot_positions=bot_positions,
        t_fill_end=t_fill_end,
        t_done=comm.context.clock.t,
    )
