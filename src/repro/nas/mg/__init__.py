"""NAS MG's ZRAN3 initialization: the 40-reduction F+MPI variant vs. the
single user-defined-reduction F+RSMPI variant (paper Figure 3)."""

from repro.nas.mg.comm3 import comm3, norm2u3, vcycle_communication_round
from repro.nas.mg.grid import Block3D, fill_zran_block
from repro.nas.mg.zran3 import MM, Zran3Result, zran3_mpi, zran3_rsmpi

__all__ = [
    "comm3",
    "norm2u3",
    "vcycle_communication_round",
    "Block3D",
    "fill_zran_block",
    "zran3_mpi",
    "zran3_rsmpi",
    "Zran3Result",
    "MM",
]
