"""A distributed conjugate-gradient solver: reductions on the critical
path of an iterative method.

NPB CG's communication profile is the inverse of MG's: *every* iteration
runs dot-product reductions that cannot be overlapped away, so at scale
the all-reduce latency becomes the iteration-time floor — the regime
where the quality of the reduction machinery (the paper's subject)
directly bounds solver throughput.

This module solves the 1-D Poisson problem (tridiagonal Laplacian) with
block-row distribution; the matvec needs only a neighbor exchange of one
boundary element per side, keeping the kernel honest but simple.  Two
variants:

* :func:`cg_solve` — textbook CG: **two** separate dot-product
  all-reduces per iteration (``r·r`` and ``p·Ap``);
* :func:`cg_solve_fused` — the same recurrence with the two dots
  **aggregated into one** all-reduce of a 2-vector (the §2.1 aggregation
  idea applied where it matters most; the basis of
  communication-avoiding "pipelined" CG variants).

Both produce identical iterates (tested) — the fused variant computes
``r·r`` for the *previous* residual inside the same message, which the
standard recurrence allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import mpi
from repro.mpi.comm import Communicator

__all__ = ["CGResult", "laplacian_matvec", "cg_solve", "cg_solve_fused",
           "cg_solve_iallreduce", "poisson_rhs", "random_rhs"]


@dataclass
class CGResult:
    """One rank's view of the solve."""

    x_local: np.ndarray  # this rank's block of the solution
    iterations: int
    residual_norm: float  # final ||r||_2
    converged: bool


def _block_bounds(n: int, p: int, r: int) -> tuple[int, int]:
    base, extra = divmod(n, p)
    lo = r * base + min(r, extra)
    return lo, lo + base + (1 if r < extra else 0)


def laplacian_matvec(
    comm: Communicator, v_local: np.ndarray
) -> np.ndarray:
    """y = A v for the 1-D Laplacian A = tridiag(-1, 2, -1), block rows.

    One boundary element travels to each neighbor (two p2p messages per
    rank) — CG's only non-reduction communication here.
    """
    r, p = comm.rank, comm.size
    n_local = len(v_local)
    # exchange boundary elements with neighbors
    left_ghost = right_ghost = 0.0
    if p > 1:
        if r > 0 and n_local:
            comm.send(float(v_local[0]), dest=r - 1, tag=31)
        if r < p - 1 and n_local:
            comm.send(float(v_local[-1]), dest=r + 1, tag=30)
        if r > 0:
            left_ghost = comm.recv(source=r - 1, tag=30)
        if r < p - 1:
            right_ghost = comm.recv(source=r + 1, tag=31)
    y = 2.0 * v_local
    y[1:] -= v_local[:-1]
    y[:-1] -= v_local[1:]
    if n_local:
        y[0] -= left_ghost
        y[-1] -= right_ghost
    return y


def poisson_rhs(comm: Communicator, n: int, *, modes: int = 8) -> np.ndarray:
    """A right-hand side mixing the first ``modes`` Laplacian eigenmodes.

    In exact arithmetic CG would converge in ``modes`` iterations (its
    Krylov space gains one eigendirection per step); in floating point
    the Laplacian's conditioning re-excites other modes, but the count
    stays far below a full-spectrum rhs — a deterministic, fast test
    point.  Block-row distributed.
    """
    lo, hi = _block_bounds(n, comm.size, comm.rank)
    i = np.arange(lo, hi, dtype=np.float64)
    out = np.zeros(hi - lo)
    for m in range(1, modes + 1):
        out += np.sin(m * np.pi * (i + 1) / (n + 1)) / m
    return out


def random_rhs(comm: Communicator, n: int) -> np.ndarray:
    """A full-spectrum rhs from the shared randlc stream (block rows):
    realistic iteration counts — O(n) for the 1-D Laplacian's
    conditioning."""
    from repro.util.rng import randlc_array

    lo, hi = _block_bounds(n, comm.size, comm.rank)
    return randlc_array(hi - lo, skip=lo) - 0.5


def cg_solve(
    comm: Communicator,
    b_local: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: int = 2000,
    dot_rate: str | None = None,
) -> CGResult:
    """Textbook CG: two all-reduces per iteration."""
    n_local = len(b_local)
    x = np.zeros(n_local)
    r = b_local.copy()
    p_vec = r.copy()
    rr = comm.allreduce(float(r @ r), mpi.SUM)  # reduction
    b_norm = np.sqrt(comm.allreduce(float(b_local @ b_local), mpi.SUM))
    threshold = (tol * b_norm) ** 2 if b_norm > 0 else tol**2
    it = 0
    while it < max_iter and rr > threshold:
        ap = laplacian_matvec(comm, p_vec)
        if dot_rate is not None:
            comm.charge_elements(dot_rate, n_local, "cg:dots")
        pap = comm.allreduce(float(p_vec @ ap), mpi.SUM)  # reduction 1
        alpha = rr / pap
        x += alpha * p_vec
        r -= alpha * ap
        rr_new = comm.allreduce(float(r @ r), mpi.SUM)  # reduction 2
        p_vec = r + (rr_new / rr) * p_vec
        rr = rr_new
        it += 1
    return CGResult(x, it, float(np.sqrt(rr)), rr <= threshold)


def cg_solve_fused(
    comm: Communicator,
    b_local: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: int = 2000,
    dot_rate: str | None = None,
) -> CGResult:
    """CG with the two per-iteration dots aggregated into ONE all-reduce.

    Identity used: with s = A r computed alongside, both ``r·r`` and
    ``r·s`` ride one 2-element message, and ``p·Ap`` follows from the CG
    recurrences (using r_{k+1}·A p_k = -rr_{k+1}/alpha_k):

        p·Ap  =  r·Ar  -  beta² · (previous p·Ap)

    Same iterates in exact arithmetic (and to rounding here — tested),
    half the reduction latency per iteration.
    """
    n_local = len(b_local)
    x = np.zeros(n_local)
    r = b_local.copy()
    p_vec = r.copy()
    b_norm = np.sqrt(comm.allreduce(float(b_local @ b_local), mpi.SUM))
    threshold = (tol * b_norm) ** 2 if b_norm > 0 else tol**2

    # bootstrap: s = A r; one fused reduce of (r·r, r·Ar)
    s = laplacian_matvec(comm, r)
    fused = comm.allreduce(
        np.array([float(r @ r), float(r @ s)]), mpi.SUM
    )  # ONE reduction
    rr, rs = float(fused[0]), float(fused[1])
    ap = s.copy()  # A p, maintained by recurrence (p == r initially)
    pap = rs
    it = 0
    while it < max_iter and rr > threshold:
        if dot_rate is not None:
            comm.charge_elements(dot_rate, n_local, "cg:dots")
        alpha = rr / pap
        x += alpha * p_vec
        r -= alpha * ap
        s = laplacian_matvec(comm, r)  # the iteration's ONLY matvec
        fused = comm.allreduce(
            np.array([float(r @ r), float(r @ s)]), mpi.SUM
        )  # the iteration's ONLY reduction
        rr_new, rs = float(fused[0]), float(fused[1])
        beta = rr_new / rr
        p_vec = r + beta * p_vec
        ap = s + beta * ap  # A p by recurrence: no second matvec
        # p·Ap without its own reduction, from the recurrence:
        pap = rs - beta * beta * pap
        rr = rr_new
        it += 1
    return CGResult(x, it, float(np.sqrt(rr)), rr <= threshold)


def cg_solve_iallreduce(
    comm: Communicator,
    b_local: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: int = 2000,
    dot_rate: str | None = None,
) -> CGResult:
    """:func:`cg_solve_fused` with the fused dot reduction issued
    **nonblocking**: the 2-element all-reduce goes out right after the
    matvec, and the solution update ``x += alpha p`` (plus the local dot
    cost) runs while the combine rounds are in flight — the pipelined-CG
    overlap, expressed with ``comm.iallreduce``.

    Bit-identical iterates to :func:`cg_solve_fused`: the arithmetic is
    unchanged, only the position of the independent ``x`` update moves.
    """
    n_local = len(b_local)
    x = np.zeros(n_local)
    r = b_local.copy()
    p_vec = r.copy()
    b_norm = np.sqrt(comm.allreduce(float(b_local @ b_local), mpi.SUM))
    threshold = (tol * b_norm) ** 2 if b_norm > 0 else tol**2

    s = laplacian_matvec(comm, r)
    fused = comm.allreduce(
        np.array([float(r @ r), float(r @ s)]), mpi.SUM
    )
    rr, rs = float(fused[0]), float(fused[1])
    ap = s.copy()
    pap = rs
    it = 0
    while it < max_iter and rr > threshold:
        alpha = rr / pap
        r -= alpha * ap
        s = laplacian_matvec(comm, r)
        req = comm.iallreduce(
            np.array([float(r @ r), float(r @ s)]), mpi.SUM
        )  # issued; combine rounds progress while we do local work
        x += alpha * p_vec  # overlapped: independent of the reduce result
        if dot_rate is not None:
            comm.charge_elements(dot_rate, n_local, "cg:dots")
        fused = req.wait()
        rr_new, rs = float(fused[0]), float(fused[1])
        beta = rr_new / rr
        p_vec = r + beta * p_vec
        ap = s + beta * ap
        pap = rs - beta * beta * pap
        rr = rr_new
        it += 1
    return CGResult(x, it, float(np.sqrt(rr)), rr <= threshold)
