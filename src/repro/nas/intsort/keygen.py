"""NAS IS key generation.

Per the NPB specification, key ``i`` is the scaled average of four
consecutive values of the shared ``randlc`` stream::

    k_i = floor( B_max * (r_{4i} + r_{4i+1} + r_{4i+2} + r_{4i+3}) / 4 )

which produces an approximately binomial (bell-shaped) key distribution
— the non-uniformity is what makes IS's bucket balancing interesting.
Every rank generates exactly its slice of the global stream via the
generator's O(log n) jump-ahead, so the key sequence is independent of
the number of ranks.
"""

from __future__ import annotations

import numpy as np

from repro.nas.common import ISClass
from repro.util.rng import RANDLC_SEED, randlc_array

__all__ = ["generate_keys", "generate_keys_block"]


def generate_keys(cls: ISClass, *, seed: int = RANDLC_SEED) -> np.ndarray:
    """All ``cls.n_keys`` keys of the instance (single address space)."""
    return generate_keys_block(cls, 0, cls.n_keys, seed=seed)


def generate_keys_block(
    cls: ISClass,
    start: int,
    count: int,
    *,
    seed: int = RANDLC_SEED,
) -> np.ndarray:
    """Keys ``start .. start+count-1`` of the global key sequence.

    Ranks call this with their block bounds; the result is identical to
    slicing :func:`generate_keys`, for any partitioning.
    """
    if count == 0:
        return np.empty(0, dtype=np.int64)
    r = randlc_array(4 * count, seed=seed, skip=4 * start)
    quads = r.reshape(count, 4).sum(axis=1)
    keys = (cls.max_key * quads / 4.0).astype(np.int64)
    # floor() of a quantity strictly below max_key: clamp defensively
    # against the r == 0.999.. * 4 edge.
    np.clip(keys, 0, cls.max_key - 1, out=keys)
    return keys
