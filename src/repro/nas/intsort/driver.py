"""End-to-end NAS IS driver: keygen -> bucket sort -> verify.

Returns per-phase virtual times so the figure benchmark can isolate the
verification phase, which is what the paper's Figure 2 plots ("timings
of ... the verification phase").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VerificationError
from repro.mpi.comm import Communicator
from repro.nas.common import ISClass
from repro.nas.intsort.bucket_sort import SortResult, bucket_sort
from repro.nas.intsort.verify import (
    verify_mpi,
    verify_rsmpi,
    verify_rsmpi_commutative,
)

__all__ = ["ISRun", "run_is", "VERIFIERS"]

VERIFIERS = {
    "mpi": verify_mpi,
    "rsmpi": verify_rsmpi,
    "rsmpi_commutative": verify_rsmpi_commutative,
}


@dataclass
class ISRun:
    """One rank's result of a full IS run."""

    sorted_ok: bool
    n_local_sorted: int
    t_sort_end: float  # virtual time when the sort finished on this rank
    t_verify_end: float  # virtual time when verification finished


def run_is(
    comm: Communicator,
    cls: ISClass,
    *,
    verifier: str = "rsmpi",
    check_rate: str | None = None,
    keygen_rate: str | None = None,
    sort_rate: str | None = None,
    expect_sorted: bool = True,
) -> ISRun:
    """Run IS on this communicator; collective.

    ``verifier`` selects the Figure-2 variant; ``*_rate`` arguments are
    cost-model rate names for virtual-time charging (None = uncharged).
    With ``expect_sorted`` (default), a False verification raises
    :class:`~repro.errors.VerificationError` — except for the
    deliberately broken ``rsmpi_commutative`` variant, whose whole point
    is to mis-verify.
    """
    result: SortResult = bucket_sort(
        comm, cls, keygen_rate=keygen_rate, sort_rate=sort_rate
    )
    comm.barrier()  # phase boundary, like the NAS timers
    t_sort_end = comm.context.clock.t
    try:
        check = VERIFIERS[verifier]
    except KeyError:
        raise VerificationError(
            f"unknown verifier {verifier!r}; choose from {sorted(VERIFIERS)}"
        ) from None
    kwargs = {"check_rate": check_rate}
    if verifier == "mpi":
        # bucket skew can leave a rank empty at high p; the driver takes
        # the degenerate-safe path (figure benchmarks call verify_mpi
        # directly with the exact NAS message pattern instead)
        kwargs["handle_empty"] = True
    ok = check(comm, result.local_sorted, **kwargs)
    t_verify_end = comm.context.clock.t
    if expect_sorted and not ok and verifier != "rsmpi_commutative":
        raise VerificationError(
            f"IS class {cls.name}: verification failed with the "
            f"{verifier!r} verifier — the sort produced unsorted output"
        )
    return ISRun(
        sorted_ok=bool(ok),
        n_local_sorted=len(result.local_sorted),
        t_sort_end=t_sort_end,
        t_verify_end=t_verify_end,
    )
