"""Local sorted-check kernels for the IS verification phase.

The paper's Figure 2 discussion turns on a *scalar optimization*: the
provided NAS C code compares ``key[i-1] > key[i]`` — **two** memory
references per element — while the RSMPI-generated accumulate loop keeps
the previous value in a scalar — **one** reference per element.  "The
RSMPI version performs better based on a scalar improvement ...
Optimizing the provided NAS C+MPI code to make one memory reference per
value in the array closed the performance gap entirely."

Three kernels reproduce the spectrum:

* :func:`sorted_check_tworef` — the original NAS idiom (2 refs/element);
* :func:`sorted_check_scalar` — the scalar-optimized idiom (1 ref);
* :func:`sorted_check_vectorized` — the NumPy pass used for the actual
  large-scale computation.

The figure benchmark *calibrates* the per-element rates of the two loop
kernels on this machine (they genuinely differ — the interpreted loops
pay per indexing operation) and charges virtual time accordingly, while
using the vectorized kernel to do the real check.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sorted_check_tworef",
    "sorted_check_scalar",
    "sorted_check_vectorized",
    "count_unsorted_vectorized",
]


def sorted_check_tworef(a) -> int:
    """Count of out-of-order adjacent pairs, NAS-style: two array
    references per element (``a[i-1] > a[i]``)."""
    errors = 0
    for i in range(1, len(a)):
        if a[i - 1] > a[i]:  # two references
            errors += 1
    return errors


def sorted_check_scalar(a) -> int:
    """Count of out-of-order adjacent pairs with the previous element
    held in a scalar: one array reference per element."""
    errors = 0
    if len(a) == 0:
        return 0
    prev = a[0]
    for i in range(1, len(a)):
        cur = a[i]  # one reference
        if prev > cur:
            errors += 1
        prev = cur
    return errors


def sorted_check_vectorized(a: np.ndarray) -> bool:
    """True iff ``a`` is non-decreasing (single NumPy pass)."""
    if len(a) < 2:
        return True
    return bool(np.all(a[:-1] <= a[1:]))


def count_unsorted_vectorized(a: np.ndarray) -> int:
    """Number of out-of-order adjacent pairs (single NumPy pass)."""
    if len(a) < 2:
        return 0
    return int(np.count_nonzero(a[:-1] > a[1:]))
