"""The NAS IS verification phase — the subject of the paper's Figure 2.

Three implementations of "is the conceptual global array sorted?":

* :func:`verify_mpi` — the C+MPI idiom the paper describes: "First, the
  boundary elements are communicated to neighboring processors ...
  Then, locally on each processor, all the other elements are checked
  ... Finally a sum reduction is used to determine that all of the
  processors have sorted values."  The local check is charged at the
  **two-memory-reference** rate (the original NAS code) or the
  **scalar-optimized** rate, giving the paper's two MPI curves.

* :func:`verify_rsmpi` — the one-liner: a single non-commutative
  ``sorted`` reduction (Listing 7/8) whose accumulate phase makes one
  reference per element.

* :func:`verify_rsmpi_commutative` — the §4.1 ablation: the same
  reduction dishonestly flagged commutative and run on a wide
  combine-as-available tree; expected to mis-verify.

All three do the real check with the vectorized kernel; the *charged*
virtual time uses per-element rates measured from the honest loop
kernels in :mod:`repro.nas.intsort.kernels`.
"""

from __future__ import annotations

import numpy as np

from repro import mpi
from repro.core.reduce import global_reduce
from repro.errors import VerificationError
from repro.mpi.comm import Communicator
from repro.nas.intsort.kernels import count_unsorted_vectorized
from repro.ops.sorted_op import DishonestCommutativeSortedOp, SortedOp

__all__ = [
    "verify_mpi",
    "verify_rsmpi",
    "verify_rsmpi_commutative",
]


def _boundary_exchange(
    comm: Communicator, local: np.ndarray, handle_empty: bool
):
    """Send my last element right, receive my left neighbor's last.

    The fast path mirrors the NAS code exactly (one neighbor message;
    NAS IS guarantees every rank holds keys).  With ``handle_empty``,
    an allgather of boundary summaries carries boundaries across empty
    ranks instead — identical result, different message pattern, only
    needed in a regime NAS IS never enters.
    """
    r, p = comm.rank, comm.size
    if p == 1:
        return None
    n = len(local)
    if not handle_empty:
        if r < p - 1:
            comm.send(local[-1], dest=r + 1, tag=7)
        return comm.recv(source=r - 1, tag=7) if r > 0 else None
    # Degenerate fallback: carry boundaries through empty ranks.
    lasts = comm.allgather(local[-1] if n > 0 else None)
    for q in range(r - 1, -1, -1):
        if lasts[q] is not None:
            return lasts[q]
    return None


def verify_mpi(
    comm: Communicator,
    local_sorted: np.ndarray,
    *,
    check_rate: str | None = None,
    handle_empty: bool = False,
) -> bool:
    """The C+MPI verification idiom; True iff globally sorted.

    ``check_rate`` charges the local pass at a named per-element rate
    (pass the calibrated two-reference rate for the original NAS curve,
    the scalar rate for the optimized one).  ``handle_empty`` enables a
    degenerate-input path (empty local blocks) the NAS original does not
    need; without it, every rank must hold at least one key when
    ``comm.size > 1``.
    """
    if not handle_empty and comm.size > 1 and len(local_sorted) == 0:
        raise VerificationError(
            "verify_mpi: empty local block — NAS IS guarantees keys on "
            "every rank; pass handle_empty=True for degenerate inputs"
        )
    prev_last = _boundary_exchange(comm, local_sorted, handle_empty)
    errors = count_unsorted_vectorized(local_sorted)
    if prev_last is not None and len(local_sorted) > 0:
        if prev_last > local_sorted[0]:
            errors += 1
    if check_rate is not None:
        comm.charge_elements(check_rate, len(local_sorted), "is:verify_local")
    total = comm.allreduce(errors, mpi.SUM)
    return int(total) == 0


def verify_rsmpi(
    comm: Communicator,
    local_sorted: np.ndarray,
    *,
    check_rate: str | None = None,
) -> bool:
    """The RSMPI one-liner: one global-view non-commutative reduction."""
    return bool(
        global_reduce(
            comm, SortedOp(), local_sorted, accum_rate=check_rate
        )
    )


def verify_rsmpi_commutative(
    comm: Communicator,
    local_sorted: np.ndarray,
    *,
    check_rate: str | None = None,
    fanout: int = 4,
) -> bool:
    """The §4.1 experiment: sorted flagged commutative.

    The commutative flag licenses the wide-fanout combine-as-available
    tree, whose combining order does not follow rank order — so the
    boundary checks compare the wrong runs and the verification is
    expected to fail on sorted data whenever ``comm.size > 2`` (the
    paper: "the program did fail to verify that the array was sorted
    (as expected)").
    """
    op = DishonestCommutativeSortedOp()
    result = global_reduce(
        comm, op, local_sorted, root=0, fanout=fanout, accum_rate=check_rate
    )
    return bool(comm.bcast(result, root=0))
