"""NAS IS (Integer Sort): keygen, parallel bucket sort, and the three
verification variants of the paper's Figure 2."""

from repro.nas.intsort.bucket_sort import SortResult, bucket_sort, local_key_block
from repro.nas.intsort.driver import ISRun, VERIFIERS, run_is
from repro.nas.intsort.kernels import (
    count_unsorted_vectorized,
    sorted_check_scalar,
    sorted_check_tworef,
    sorted_check_vectorized,
)
from repro.nas.intsort.keygen import generate_keys, generate_keys_block
from repro.nas.intsort.verify import (
    verify_mpi,
    verify_rsmpi,
    verify_rsmpi_commutative,
)

__all__ = [
    "generate_keys",
    "generate_keys_block",
    "bucket_sort",
    "local_key_block",
    "SortResult",
    "verify_mpi",
    "verify_rsmpi",
    "verify_rsmpi_commutative",
    "run_is",
    "ISRun",
    "VERIFIERS",
    "sorted_check_tworef",
    "sorted_check_scalar",
    "sorted_check_vectorized",
    "count_unsorted_vectorized",
]
