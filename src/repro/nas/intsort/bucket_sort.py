"""Parallel bucket sort — the computational core of NAS IS.

The classic NPB IS algorithm:

1. every rank generates its block of the global key sequence;
2. keys are histogrammed into buckets; a SUM all-reduce of the bucket
   counts gives the global key density (this is the famous aggregated
   reduction: one message of ~1024 counts instead of 1024 messages);
3. buckets are assigned to ranks in contiguous runs balancing the total
   number of keys per rank;
4. an all-to-all exchange routes every key to the rank owning its
   bucket;
5. each rank sorts its received keys locally.

The result is globally sorted in rank order: rank r's largest key is at
most rank r+1's smallest.  The verification phase (``verify.py``) then
checks exactly that — the part of IS the paper's Figure 2 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import mpi
from repro.mpi.comm import Communicator
from repro.nas.common import ISClass
from repro.nas.intsort.keygen import generate_keys_block
from repro.util.rng import RANDLC_SEED

__all__ = ["SortResult", "bucket_sort", "local_key_block"]


@dataclass
class SortResult:
    """One rank's view of the sorted global array."""

    local_sorted: np.ndarray  # this rank's contiguous run of the sorted keys
    n_local_input: int  # keys this rank generated
    n_buckets: int


def local_key_block(
    comm: Communicator, cls: ISClass, *, seed: int = RANDLC_SEED
) -> tuple[np.ndarray, int]:
    """This rank's block of the global key sequence and its start index."""
    n, p, r = cls.n_keys, comm.size, comm.rank
    base, extra = divmod(n, p)
    start = r * base + min(r, extra)
    count = base + (1 if r < extra else 0)
    return generate_keys_block(cls, start, count, seed=seed), start


def bucket_sort(
    comm: Communicator,
    cls: ISClass,
    *,
    n_buckets: int | None = None,
    seed: int = RANDLC_SEED,
    keygen_rate: str | None = None,
    sort_rate: str | None = None,
) -> SortResult:
    """Sort the instance's keys across the communicator.

    ``keygen_rate``/``sort_rate`` optionally charge virtual time for the
    local phases at named cost-model rates (per generated / per sorted
    key).
    """
    if n_buckets is None:
        # NPB IS uses 2^10 buckets; never fewer buckets than ranks, never
        # more buckets than distinct keys.
        n_buckets = max(min(1024, cls.max_key), comm.size)
    keys, _start = local_key_block(comm, cls, seed=seed)
    if keygen_rate is not None:
        comm.charge_elements(keygen_rate, len(keys), "is:keygen")

    # Bucket histogram + aggregated allreduce (one message, n_buckets counts).
    shift_den = cls.max_key
    bucket_of = (keys.astype(np.int64) * n_buckets) // max(shift_den, 1)
    np.clip(bucket_of, 0, n_buckets - 1, out=bucket_of)
    local_counts = np.bincount(bucket_of, minlength=n_buckets)
    global_counts = comm.allreduce(local_counts, mpi.SUM)

    # Contiguous bucket -> rank assignment balancing key counts.
    cum = np.cumsum(global_counts)
    total = int(cum[-1])
    targets = [(r + 1) * total / comm.size for r in range(comm.size)]
    owner_of_bucket = np.searchsorted(targets, cum, side="left")
    np.clip(owner_of_bucket, 0, comm.size - 1, out=owner_of_bucket)

    # Route keys: all-to-all personalized exchange.
    dest_of_key = owner_of_bucket[bucket_of]
    outgoing = [keys[dest_of_key == d] for d in range(comm.size)]
    incoming = comm.alltoall(outgoing)
    mine = (
        np.concatenate(incoming)
        if any(len(b) for b in incoming)
        else np.empty(0, dtype=np.int64)
    )

    mine.sort()
    if sort_rate is not None:
        comm.charge_elements(sort_rate, len(mine), "is:local_sort")
    return SortResult(
        local_sorted=mine, n_local_input=len(keys), n_buckets=n_buckets
    )
