"""NAS problem classes, at paper scale and at laptop scale.

The paper evaluates classes A, B and C of NAS IS and NAS MG on a 92-node
IBM P655.  Full-size classes are constructible here, but the default
classes are scaled down (documented in DESIGN.md §7) so each benchmark
runs in seconds of wall time; the virtual-time cost model still charges
full per-element costs, so the *shape* of the efficiency figures is
governed by the same compute/latency ratio as at full scale — scaled
classes shift where that ratio sits, exactly like the paper's own
A-vs-B-vs-C progression.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = ["ISClass", "MGClass", "is_class", "mg_class", "IS_CLASSES",
           "IS_CLASSES_FULL", "MG_CLASSES", "MG_CLASSES_FULL"]


@dataclass(frozen=True)
class ISClass:
    """NAS IS problem instance: number of keys and key range."""

    name: str
    n_keys: int
    max_key: int  # keys are drawn from [0, max_key)

    @property
    def total_keys(self) -> int:
        return self.n_keys


@dataclass(frozen=True)
class MGClass:
    """NAS MG problem instance (only the grid matters for ZRAN3)."""

    name: str
    nx: int
    ny: int
    nz: int

    @property
    def n_points(self) -> int:
        return self.nx * self.ny * self.nz


#: Paper-scale classes (NPB 3.x definitions).
IS_CLASSES_FULL: dict[str, ISClass] = {
    "S": ISClass("S", 1 << 16, 1 << 11),
    "W": ISClass("W", 1 << 20, 1 << 16),
    "A": ISClass("A", 1 << 23, 1 << 19),
    "B": ISClass("B", 1 << 25, 1 << 21),
    "C": ISClass("C", 1 << 27, 1 << 23),
}

#: Laptop-scale classes (DESIGN.md §7): same S, A/B/C shrunk 16x/16x/16x.
IS_CLASSES: dict[str, ISClass] = {
    "S": ISClass("S", 1 << 16, 1 << 11),
    "W": ISClass("W", 1 << 18, 1 << 14),
    "A": ISClass("A", 1 << 19, 1 << 15),
    "B": ISClass("B", 1 << 21, 1 << 17),
    "C": ISClass("C", 1 << 23, 1 << 19),
}

MG_CLASSES_FULL: dict[str, MGClass] = {
    "S": MGClass("S", 32, 32, 32),
    "A": MGClass("A", 256, 256, 256),
    "B": MGClass("B", 256, 256, 256),
    "C": MGClass("C", 512, 512, 512),
}

MG_CLASSES: dict[str, MGClass] = {
    "S": MGClass("S", 32, 32, 32),
    "A": MGClass("A", 64, 64, 64),
    "B": MGClass("B", 96, 96, 96),
    "C": MGClass("C", 128, 128, 128),
}


def is_class(name: str, *, full: bool = False) -> ISClass:
    """Look up an IS class by letter; ``full=True`` for paper scale."""
    table = IS_CLASSES_FULL if full else IS_CLASSES
    try:
        return table[name.upper()]
    except KeyError:
        raise ReproError(
            f"unknown IS class {name!r}; choose from {sorted(table)}"
        ) from None


def mg_class(name: str, *, full: bool = False) -> MGClass:
    """Look up an MG class by letter; ``full=True`` for paper scale."""
    table = MG_CLASSES_FULL if full else MG_CLASSES
    try:
        return table[name.upper()]
    except KeyError:
        raise ReproError(
            f"unknown MG class {name!r}; choose from {sorted(table)}"
        ) from None
