"""NAS kernel substrates: IS (integer sort), MG (ZRAN3 + comm3), and EP
(embarrassingly parallel), plus the communication-call census."""

from repro.nas.callcounts import CallCensus, census
from repro.nas.cg import (
    CGResult,
    cg_solve,
    cg_solve_fused,
    laplacian_matvec,
    poisson_rhs,
    random_rhs,
)
from repro.nas.ep import (
    EP_CLASSES,
    EP_CLASSES_FULL,
    EPOp,
    EPResult,
    ep_class,
    ep_mpi,
    ep_rsmpi,
)
from repro.nas.common import (
    IS_CLASSES,
    IS_CLASSES_FULL,
    ISClass,
    MG_CLASSES,
    MG_CLASSES_FULL,
    MGClass,
    is_class,
    mg_class,
)

__all__ = [
    "ISClass",
    "MGClass",
    "is_class",
    "mg_class",
    "IS_CLASSES",
    "IS_CLASSES_FULL",
    "MG_CLASSES",
    "MG_CLASSES_FULL",
    "CallCensus",
    "census",
    "ep_class",
    "EP_CLASSES",
    "EP_CLASSES_FULL",
    "EPOp",
    "EPResult",
    "ep_mpi",
    "ep_rsmpi",
    "CGResult",
    "cg_solve",
    "cg_solve_fused",
    "laplacian_matvec",
    "poisson_rhs",
    "random_rhs",
]
