"""Declarative, seeded fault-injection plans.

A :class:`FaultPlan` is pure data: *what* can go wrong, with what
probability or at what point.  It contains no mutable state and can be
reused across runs; binding it to a world (and materializing the
per-rank RNG streams) is the job of
:class:`repro.faults.injection.FaultInjector`.

Reproducibility contract: a plan plus a world size determines every
fault decision.  Each rank draws from its own ``random.Random`` seeded
with ``f"{seed}:{rank}"`` (string seeding is stable across Python
versions and platforms), so rank *r*'s fault stream does not depend on
what other ranks do or on the thread schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = [
    "FailStop",
    "RackFailure",
    "LinkFaults",
    "FaultPlan",
    "expand_rack_failures",
    "random_plan",
    "reseed",
    "TransientPlan",
    "transient_plan",
]


@dataclass(frozen=True)
class FailStop:
    """Schedule one rank's fail-stop (crash) point.

    Exactly one of ``at_time`` / ``at_op`` should be set:

    ``at_time``
        Die at the first virtual-clock charge that reaches this time.
    ``at_op``
        Die immediately before this rank's nth message send (1-based).
        ``at_op=1`` kills the rank at its first send — under the
        global-view drivers that is inside the combine phase, after the
        local accumulate completed.
    """

    rank: int
    at_time: float | None = None
    at_op: int | None = None

    def __post_init__(self):
        if (self.at_time is None) == (self.at_op is None):
            raise ValueError("FailStop needs exactly one of at_time / at_op")
        if self.at_op is not None and self.at_op < 1:
            raise ValueError(f"at_op is 1-based, got {self.at_op}")


@dataclass(frozen=True)
class RackFailure:
    """Schedule the loss of one rack-level fault domain.

    A rack failure (ToR switch death, PDU trip) takes out *every* rank
    placed under that switch at once.  Racks are a property of the
    world's :class:`~repro.runtime.fabric.Topology`, not of the plan, so
    a ``RackFailure`` stays symbolic until a world binds the plan:
    :func:`expand_rack_failures` lowers it to one per-rank
    :class:`FailStop` (``at_time``-triggered) per member placed in the
    doomed rack.  From there the existing machinery — fail-stop checks,
    ULFM revoke/shrink, engine quarantine — applies unchanged.

    On a flat topology every rank is in rack 0: ``RackFailure(rack=0)``
    is then a whole-world failure.
    """

    rack: int
    at_time: float = 0.0

    def __post_init__(self):
        if self.rack < 0:
            raise ValueError(f"rack must be >= 0, got {self.rack}")
        if self.at_time < 0:
            raise ValueError(f"at_time must be >= 0, got {self.at_time}")


@dataclass(frozen=True)
class LinkFaults:
    """Per-message perturbation probabilities (applied sender-side).

    ``drop_rate``
        Probability a transmission attempt is lost.  The reliable layer
        models the retransmit: the sender pays exponential-backoff
        virtual time per lost attempt, then the message goes through —
        drops cost *time*, never data.
    ``dup_rate``
        Probability the message is delivered twice (the duplicate is
        discarded by receiver-side sequence numbers).
    ``delay_rate`` / ``delay_seconds``
        Probability of, and maximum magnitude of, extra wire latency
        (uniform in ``[0, delay_seconds]``).
    ``reorder_rate``
        Probability a message overtakes the previous in-flight message
        to the same destination queue (repaired by sequence numbers).
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 1e-4
    reorder_rate: float = 0.0

    def __post_init__(self):
        for name in ("drop_rate", "dup_rate", "delay_rate", "reorder_rate"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.drop_rate >= 1.0:
            raise ValueError("drop_rate must be < 1 (retransmit must terminate)")

    @property
    def any_active(self) -> bool:
        return (
            self.drop_rate > 0.0
            or self.dup_rate > 0.0
            or self.delay_rate > 0.0
            or self.reorder_rate > 0.0
        )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, reproducible fault schedule for one SPMD run.

    Attributes
    ----------
    seed:
        Root seed for all probabilistic decisions (link faults).  The
        deterministic parts (fail-stops, stragglers) do not consume
        randomness at injection time.
    failstops:
        Fail-stop schedules, at most one per rank.
    link:
        Lossy-link perturbation rates, applied to every send.
    stragglers:
        ``{rank: multiplier}`` — rank's compute charges are scaled by
        ``multiplier`` (> 1 slows the rank down).
    rto:
        Base retransmission timeout (virtual seconds) for the reliable
        layer's exponential backoff: attempt *i* of a dropped message
        costs ``rto * 2**i`` extra virtual time at the sender.
    rack_failures:
        Rack-scoped fault domains: each entry fail-stops every rank the
        world's topology places in that rack (lowered to per-rank
        :class:`FailStop` entries by :func:`expand_rack_failures` when a
        world binds the plan).
    """

    seed: int = 0
    failstops: tuple[FailStop, ...] = ()
    link: LinkFaults = field(default_factory=LinkFaults)
    stragglers: dict[int, float] = field(default_factory=dict)
    rto: float = 1e-4
    rack_failures: tuple[RackFailure, ...] = ()

    def __post_init__(self):
        ranks = [f.rank for f in self.failstops]
        if len(ranks) != len(set(ranks)):
            raise ValueError("at most one FailStop per rank")
        for r, m in self.stragglers.items():
            if m <= 0:
                raise ValueError(f"straggler multiplier for rank {r} must be > 0")
        if self.rto <= 0:
            raise ValueError("rto must be > 0")

    @property
    def can_fail(self) -> bool:
        """True if the plan schedules any rank fail-stop."""
        return bool(self.failstops) or bool(self.rack_failures)

    @property
    def lossy(self) -> bool:
        """True if the plan perturbs message delivery at all."""
        return self.link.any_active

    def rank_stream(self, rank: int) -> random.Random:
        """The deterministic RNG stream for one rank's link faults."""
        return random.Random(f"{self.seed}:{rank}")

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for f in self.failstops:
            when = (
                f"t={f.at_time:g}" if f.at_time is not None else f"op={f.at_op}"
            )
            parts.append(f"failstop(rank={f.rank}, {when})")
        if self.link.any_active:
            parts.append(
                f"link(drop={self.link.drop_rate:g}, dup={self.link.dup_rate:g}, "
                f"delay={self.link.delay_rate:g}, reorder={self.link.reorder_rate:g})"
            )
        if self.stragglers:
            parts.append(
                "stragglers(" + ", ".join(
                    f"{r}x{m:g}" for r, m in sorted(self.stragglers.items())
                ) + ")"
            )
        for rf in self.rack_failures:
            parts.append(f"rack_failure(rack={rf.rack}, t={rf.at_time:g})")
        return "FaultPlan(" + ", ".join(parts) + ")"


def expand_rack_failures(plan, topology, members) -> "FaultPlan":
    """Lower a plan's rack-scoped failures for one concrete placement.

    ``members`` is the group-rank-ordered tuple of world ranks the plan
    will govern (``range(nprocs)`` for a standalone world, the gang's
    pool placement for an engine job); ``topology`` maps world ranks to
    racks.  Every member whose rack appears in ``plan.rack_failures``
    gains an ``at_time`` :class:`FailStop` addressed by its *group*
    rank — the coordinate space fault plans always use, which keeps a
    rack-chaos job reproducible wherever the pool places it.  Members
    that already carry an explicit ``FailStop`` keep it (the
    at-most-one-per-rank invariant).  Plans without rack failures are
    returned unchanged.
    """
    racks = getattr(plan, "rack_failures", ())
    if not racks:
        return plan
    claimed = {f.rank for f in plan.failstops}
    extra: list[FailStop] = []
    for rf in racks:
        for g, w in enumerate(members):
            if topology.rack_of(w) == rf.rack and g not in claimed:
                extra.append(FailStop(rank=g, at_time=rf.at_time))
                claimed.add(g)
    return FaultPlan(
        seed=plan.seed,
        failstops=plan.failstops + tuple(extra),
        link=plan.link,
        stragglers=plan.stragglers,
        rto=plan.rto,
    )


def random_plan(
    seed: int,
    nprocs: int,
    *,
    failstop: bool = True,
    lossy: bool = True,
    stragglers: bool = True,
    max_drop: float = 0.3,
    max_dup: float = 0.3,
) -> FaultPlan:
    """Derive a random-but-reproducible plan from a single seed.

    Used by the chaos harness: the same ``(seed, nprocs)`` always yields
    the same plan.  Rank 0 is never fail-stopped (it is the conventional
    root/survivor against which recovered results are checked), and
    exactly one rank dies per plan when ``failstop`` is enabled — the
    single-failure model the recovery protocol is specified for.
    """
    rng = random.Random(f"plan:{seed}:{nprocs}")
    failstops: tuple[FailStop, ...] = ()
    if failstop and nprocs >= 2:
        victim = rng.randrange(1, nprocs)
        # at_op=1: die at the first send, i.e. inside the combine phase
        # of a global-view reduction (accumulate does not communicate).
        failstops = (FailStop(rank=victim, at_op=1),)
    link = LinkFaults()
    if lossy:
        link = LinkFaults(
            drop_rate=rng.uniform(0.0, max_drop),
            dup_rate=rng.uniform(0.0, max_dup),
            delay_rate=rng.uniform(0.0, 0.3),
            delay_seconds=10 ** rng.uniform(-5, -3),
            reorder_rate=rng.uniform(0.0, 0.3),
        )
    slow: dict[int, float] = {}
    if stragglers and rng.random() < 0.5:
        slow[rng.randrange(nprocs)] = rng.uniform(1.5, 8.0)
    return FaultPlan(seed=seed, failstops=failstops, link=link, stragglers=slow)


def reseed(plan: FaultPlan, attempt: int) -> FaultPlan:
    """Derive the fault plan for retry ``attempt`` (0 = first attempt).

    A retried job must not replay the exact fault stream that killed it
    — a deterministic at-op fail-stop would recur forever — so the
    engine's :class:`~repro.engine.resilience.RetryPolicy` reseeds the
    plan per attempt.  The derivation is itself deterministic (seed
    arithmetic, no entropy), preserving the reproducibility contract:
    the same submitted plan and attempt number always yield the same
    derived plan.  Fail-stop schedules are kept only on attempt 0; link
    faults and stragglers persist (the reliable layer makes them
    bit-transparent) with a reseeded probabilistic stream.
    """
    if attempt == 0:
        return plan
    return FaultPlan(
        seed=plan.seed + 1_000_003 * attempt,
        failstops=(),
        link=plan.link,
        stragglers=plan.stragglers,
        rto=plan.rto,
    )


class TransientPlan:
    """A callable fault-plan source modelling *transient* faults.

    The engine accepts either a static :class:`FaultPlan` or a callable
    ``attempt -> FaultPlan | None`` as a job's ``fault_plan``; this is
    the canonical callable: each attempt independently (but
    deterministically, from the seed) draws whether a fail-stop strikes,
    so a job under a :class:`~repro.engine.resilience.RetryPolicy`
    eventually lands a clean attempt and completes bit-identically to a
    fault-free run.  This is the chaos-tenant primitive used by
    ``python -m repro serve --chaos`` and the chaos-soak benchmark.
    """

    __slots__ = ("seed", "nprocs", "failstop_rate", "lossy", "max_drop")

    def __init__(
        self,
        seed: int,
        nprocs: int,
        *,
        failstop_rate: float = 0.5,
        lossy: bool = True,
        max_drop: float = 0.2,
    ):
        if not 0.0 <= failstop_rate <= 1.0:
            raise ValueError(
                f"failstop_rate must be in [0, 1], got {failstop_rate}"
            )
        self.seed = seed
        self.nprocs = nprocs
        self.failstop_rate = failstop_rate
        self.lossy = lossy
        self.max_drop = max_drop

    def __call__(self, attempt: int) -> FaultPlan:
        rng = random.Random(
            f"transient:{self.seed}:{self.nprocs}:{attempt}"
        )
        failstops: tuple[FailStop, ...] = ()
        if self.nprocs >= 2 and rng.random() < self.failstop_rate:
            victim = rng.randrange(1, self.nprocs)
            failstops = (FailStop(rank=victim, at_op=1),)
        link = LinkFaults()
        if self.lossy:
            link = LinkFaults(
                drop_rate=rng.uniform(0.0, self.max_drop),
                dup_rate=rng.uniform(0.0, 0.2),
                delay_rate=rng.uniform(0.0, 0.2),
                delay_seconds=10 ** rng.uniform(-5, -4),
                reorder_rate=rng.uniform(0.0, 0.2),
            )
        return FaultPlan(
            seed=self.seed + 1_000_003 * attempt,
            failstops=failstops,
            link=link,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransientPlan(seed={self.seed}, nprocs={self.nprocs}, "
            f"failstop_rate={self.failstop_rate:g})"
        )


def transient_plan(
    seed: int,
    nprocs: int,
    *,
    failstop_rate: float = 0.5,
    lossy: bool = True,
    max_drop: float = 0.2,
) -> TransientPlan:
    """Convenience constructor for :class:`TransientPlan` (chaos tenants)."""
    return TransientPlan(
        seed, nprocs,
        failstop_rate=failstop_rate, lossy=lossy, max_drop=max_drop,
    )
