"""Deterministic, seeded fault injection for the SPMD simulator.

The package has four layers:

``plan``
    :class:`FaultPlan` — a declarative, fully reproducible schedule of
    faults (rank fail-stop at a virtual time or nth send, message
    drop/duplication/delay/reorder rates, straggler slowdowns), plus
    :func:`random_plan` which derives one from a single integer seed.
``injection``
    :class:`FaultInjector` — a plan bound to a running world.  The
    runtime calls into it from ``RankContext.charge``/``send_raw`` and
    it answers "does this rank die now?", "how is this transmission
    perturbed?", surfacing every event through ``repro.obs`` metrics.
``reliable``
    The reliable-delivery layer over lossy links: sequence-numbered
    frames, sender-modeled retransmit with exponential backoff in
    virtual time, receiver-side duplicate suppression and reorder
    repair.  Every layer above sees exactly-once, in-order delivery.
``chaos``
    The soak harness behind ``python -m repro chaos``: runs every
    operator in ``repro.ops`` under random plans and checks results
    against failure-free baselines.  (Imported lazily — it pulls in
    ``repro.core``, which depends back on the runtime.)

Determinism: every random decision is drawn from a per-rank
``random.Random`` stream seeded with a string derived from the plan
seed and the rank, so outcomes depend only on (plan, nprocs, program),
never on the thread schedule.
"""

from repro.faults.injection import FaultInjector
from repro.faults.plan import (
    FailStop,
    FaultPlan,
    LinkFaults,
    TransientPlan,
    random_plan,
    reseed,
    transient_plan,
)
from repro.faults.reliable import Frame

__all__ = [
    "FailStop",
    "FaultInjector",
    "FaultPlan",
    "Frame",
    "LinkFaults",
    "TransientPlan",
    "random_plan",
    "reseed",
    "transient_plan",
]
