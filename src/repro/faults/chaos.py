"""Chaos soak-testing: every operator under random seeded fault plans.

The harness behind ``python -m repro chaos``.  For each operator in
``repro.ops`` (via a curated case registry that knows how to build the
operator and generate suitable input data) it runs the global-view
reduction/scan drivers under seeded fault plans and checks the results
against failure-free baselines:

Lossy mode (all operators)
    A plan dropping/duplicating/delaying/reordering messages must leave
    results **bit-identical** to the fault-free run — the reliable
    delivery layer makes lossy links cost virtual time, never
    correctness.  Reductions and scans are both checked.

Fail-stop mode (commutative operators)
    One rank is fail-stopped at its first send — which, under the
    global-view drivers, is inside the combine phase, after its local
    accumulate completed.  Survivors must recover the **survivor-only
    baseline**: the result of a fault-free run over ``p - 1`` ranks
    holding the survivors' data blocks.  Because the recovered combine
    runs the very same schedule over the very same checkpointed states,
    the comparison is exact, not approximate.  Non-commutative
    operators are checked for the documented clean failure instead
    (:class:`~repro.errors.OperatorError` naming the operator).

Determinism
    Each faulted run is executed twice; results, failed-rank sets and
    virtual makespans must match exactly.

Fault activity (retransmits, duplicates, reorders, fail-stops,
recovery rounds) is surfaced through ``repro.obs`` metrics and included
in each case's report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro import ops as _ops
from repro.core.operator import ReduceScanOp, state_equal
from repro.core.reduce import global_reduce
from repro.core.scan import global_scan
from repro.errors import OperatorError, SpmdError
from repro.faults.plan import FailStop, FaultPlan, LinkFaults
from repro.obs.tracer import Tracer
from repro.runtime.executor import spmd_run

__all__ = ["ChaosCase", "CHAOS_CASES", "run_chaos", "chaos_report_lines"]


@dataclass(frozen=True)
class ChaosCase:
    """One operator plus a generator of suitable random input data."""

    name: str
    make_op: Callable[[], ReduceScanOp]
    make_data: Callable[[random.Random, int], list]
    scan: bool = True  # some ops only define a meaningful reduction


def _floats(rng: random.Random, n: int) -> list[float]:
    return [rng.uniform(-10.0, 10.0) for _ in range(n)]


def _near_one(rng: random.Random, n: int) -> list[float]:
    return [rng.uniform(0.9, 1.1) for _ in range(n)]


def _bools(rng: random.Random, n: int) -> list[bool]:
    return [rng.random() < 0.5 for _ in range(n)]


def _ints(rng: random.Random, n: int) -> list[int]:
    return [rng.randrange(0, 256) for _ in range(n)]


def _distinct(rng: random.Random, n: int) -> list[float]:
    # Distinct values keep order-of-equals ambiguity out of k-smallest /
    # location operators, so exact comparison is meaningful.
    return rng.sample([float(v) for v in range(10 * n)], n)


def _val_loc(rng: random.Random, n: int) -> list[tuple[float, int]]:
    vals = _distinct(rng, n)
    locs = rng.sample(range(100 * (n + 1)), n)
    return list(zip(vals, locs))


def _unit(rng: random.Random, n: int) -> list[float]:
    return [rng.random() for _ in range(n)]


def _small_ints(rng: random.Random, n: int) -> list[int]:
    return [rng.randrange(1, 9) for _ in range(n)]


def _seg_pairs(rng: random.Random, n: int) -> list[tuple[float, int]]:
    return [(rng.uniform(-5, 5), int(rng.random() < 0.3)) for _ in range(n)]


def _affine_pairs(rng: random.Random, n: int) -> list[tuple[float, float]]:
    return [(rng.uniform(0.5, 1.5), rng.uniform(-1, 1)) for _ in range(n)]


#: Every public operator in ``repro.ops`` appears here exactly once,
#: except pure state/result types (``SortedState`` etc.), the
#: ``linear_recurrence`` convenience function, and
#: ``DishonestCommutativeSortedOp`` — the latter *deliberately* lies
#: about commutativity (it exists to demonstrate operator validation),
#: so no recovery guarantee can hold for it.
CHAOS_CASES: tuple[ChaosCase, ...] = (
    ChaosCase("sum", lambda: _ops.SumOp(), _floats),
    ChaosCase("prod", lambda: _ops.ProdOp(), _near_one),
    ChaosCase("min", lambda: _ops.MinOp(), _floats),
    ChaosCase("max", lambda: _ops.MaxOp(), _floats),
    ChaosCase(
        "ufunc_max",
        lambda: _ops.UfuncOp(np.maximum, -np.inf, "ufunc_max"),
        _floats,
    ),
    ChaosCase("all", lambda: _ops.AllOp(), _bools),
    ChaosCase("any", lambda: _ops.AnyOp(), _bools),
    ChaosCase("xor", lambda: _ops.XorOp(), _bools),
    ChaosCase("band", lambda: _ops.BandOp(), _ints),
    ChaosCase("bor", lambda: _ops.BorOp(), _ints),
    ChaosCase("bxor", lambda: _ops.BxorOp(), _ints),
    ChaosCase("mini", lambda: _ops.MiniOp(), _val_loc),
    ChaosCase("maxi", lambda: _ops.MaxiOp(), _val_loc),
    ChaosCase("mink", lambda: _ops.MinKOp(3), _distinct),
    ChaosCase("maxk", lambda: _ops.MaxKOp(3), _distinct),
    ChaosCase("translate_mink", lambda: _ops.TranslateMinKOp(3), _distinct),
    ChaosCase("counts", lambda: _ops.CountsOp(8), _small_ints),
    ChaosCase("union", lambda: _ops.UnionOp(), _small_ints),
    ChaosCase("distinct_count", lambda: _ops.DistinctCountOp(), _small_ints),
    ChaosCase("concat", lambda: _ops.ConcatOp(), _ints),
    ChaosCase(
        "histogram",
        lambda: _ops.HistogramOp([0.0, 0.25, 0.5, 0.75, 1.0], clip=True),
        _unit,
    ),
    ChaosCase("sorted", lambda: _ops.SortedOp(), _floats),
    ChaosCase("meanvar", lambda: _ops.MeanVarOp(), _floats),
    ChaosCase("extrema_kloc", lambda: _ops.ExtremaKLocOp(3), _val_loc),
    ChaosCase("mink_loc", lambda: _ops.MinKLocOp(3), _val_loc),
    ChaosCase("maxk_loc", lambda: _ops.MaxKLocOp(3), _val_loc),
    ChaosCase(
        "fused",
        lambda: _ops.FusedOp([_ops.SumOp(), _ops.MinKOp(3)]),
        _distinct,
    ),
    ChaosCase(
        "segmented",
        lambda: _ops.SegmentedOp(lambda a, b: a + b, 0.0, name="segsum"),
        _seg_pairs,
    ),
    ChaosCase("topk", lambda: _ops.TopKOp(4), _distinct),
    ChaosCase("affine", lambda: _ops.AffineOp(), _affine_pairs),
    ChaosCase("logsumexp", lambda: _ops.LogSumExpOp(), _floats),
)


@dataclass
class CaseResult:
    """Outcome of one (case, seed, nprocs) chaos trial."""

    case: str
    seed: int
    nprocs: int
    mode: str  # "lossy" or "failstop"
    ok: bool
    detail: str = ""
    metrics: dict = field(default_factory=dict)


def _blocks(case: ChaosCase, seed: int, nprocs: int, n_per_rank: int) -> list[list]:
    rng = random.Random(f"chaos-data:{case.name}:{seed}")
    return [case.make_data(rng, n_per_rank) for _ in range(nprocs)]


def _reduce_prog(case: ChaosCase, blocks: list[list]):
    def prog(comm):
        return global_reduce(comm, case.make_op(), blocks[comm.rank])

    return prog


def _scan_prog(case: ChaosCase, blocks: list[list]):
    def prog(comm):
        return global_scan(comm, case.make_op(), blocks[comm.rank])

    return prog


def _fault_counters(tracer: Tracer) -> dict[str, int]:
    snap = tracer.metrics.snapshot()
    return {
        k: v for k, v in snap["counters"].items() if k.startswith("faults.")
    }


def _run_lossy(case: ChaosCase, seed: int, nprocs: int, n_per_rank: int) -> CaseResult:
    blocks = _blocks(case, seed, nprocs, n_per_rank)
    rng = random.Random(f"chaos-lossy:{seed}")
    plan = FaultPlan(
        seed=seed,
        link=LinkFaults(
            drop_rate=rng.uniform(0.05, 0.3),
            dup_rate=rng.uniform(0.05, 0.3),
            delay_rate=rng.uniform(0.0, 0.3),
            delay_seconds=1e-4,
            reorder_rate=rng.uniform(0.0, 0.3),
        ),
    )
    progs = [("reduce", _reduce_prog(case, blocks))]
    if case.scan:
        progs.append(("scan", _scan_prog(case, blocks)))
    metrics: dict[str, int] = {}
    for what, prog in progs:
        base = spmd_run(prog, nprocs)
        tracer = Tracer()
        faulted = spmd_run(prog, nprocs, fault_plan=plan, tracer=tracer)
        again = spmd_run(prog, nprocs, fault_plan=plan)
        for k, v in _fault_counters(tracer).items():
            metrics[k] = metrics.get(k, 0) + v
        if not state_equal(faulted.returns, base.returns):
            return CaseResult(
                case.name, seed, nprocs, "lossy", False,
                f"{what}: faulted result != fault-free baseline", metrics,
            )
        if not state_equal(faulted.returns, again.returns) or (
            faulted.time != again.time
        ):
            return CaseResult(
                case.name, seed, nprocs, "lossy", False,
                f"{what}: faulted run is not deterministic per seed", metrics,
            )
    return CaseResult(case.name, seed, nprocs, "lossy", True, "", metrics)


def _run_failstop(case: ChaosCase, seed: int, nprocs: int, n_per_rank: int) -> CaseResult:
    blocks = _blocks(case, seed, nprocs, n_per_rank)
    rng = random.Random(f"chaos-failstop:{seed}:{nprocs}")
    victim = rng.randrange(1, nprocs)  # rank 0 survives as reference
    plan = FaultPlan(seed=seed, failstops=(FailStop(rank=victim, at_op=1),))
    op = case.make_op()
    metrics: dict[str, int] = {}
    if not op.commutative:
        # Documented clean failure: the combine collapses with an
        # OperatorError naming the operator, not a hang or a wrong answer.
        prog = _reduce_prog(case, blocks)
        try:
            spmd_run(prog, nprocs, fault_plan=plan)
        except SpmdError as e:
            if any(
                isinstance(exc, OperatorError) and op.name in str(exc)
                for exc in e.failures.values()
            ):
                return CaseResult(
                    case.name, seed, nprocs, "failstop", True, "", metrics
                )
            return CaseResult(
                case.name, seed, nprocs, "failstop", False,
                f"non-commutative op failed without OperatorError: {e}",
                metrics,
            )
        return CaseResult(
            case.name, seed, nprocs, "failstop", False,
            "non-commutative op did not fail cleanly", metrics,
        )
    survivor_blocks = [b for q, b in enumerate(blocks) if q != victim]
    progs = [("reduce", _reduce_prog)]
    if case.scan:
        progs.append(("scan", _scan_prog))
    for what, make_prog in progs:
        tracer = Tracer()
        faulted = spmd_run(
            make_prog(case, blocks), nprocs, fault_plan=plan, tracer=tracer
        )
        again = spmd_run(make_prog(case, blocks), nprocs, fault_plan=plan)
        baseline = spmd_run(make_prog(case, survivor_blocks), nprocs - 1)
        for k, v in _fault_counters(tracer).items():
            metrics[k] = metrics.get(k, 0) + v
        survivors_out = [
            r for q, r in enumerate(faulted.returns) if q != victim
        ]
        if faulted.failed_ranks != {victim}:
            return CaseResult(
                case.name, seed, nprocs, "failstop", False,
                f"{what}: failed_ranks {set(faulted.failed_ranks)} != "
                f"{{{victim}}}", metrics,
            )
        if not state_equal(survivors_out, baseline.returns):
            return CaseResult(
                case.name, seed, nprocs, "failstop", False,
                f"{what}: survivors' result != survivor-only baseline",
                metrics,
            )
        # Results are deterministic per seed (the re-combine runs from
        # fixed checkpoints over a fixed survivor group); the *virtual
        # time* of recovery is not compared — which survivor detects the
        # failure first depends on detection interleaving (see
        # docs/fault_model.md).
        if not state_equal(faulted.returns, again.returns):
            return CaseResult(
                case.name, seed, nprocs, "failstop", False,
                f"{what}: faulted run is not deterministic per seed", metrics,
            )
    return CaseResult(case.name, seed, nprocs, "failstop", True, "", metrics)


def run_chaos(
    *,
    seeds: Sequence[int],
    sizes: Sequence[int] = (4, 8, 16),
    n_per_rank: int = 6,
    cases: Sequence[ChaosCase] | None = None,
    modes: Sequence[str] = ("lossy", "failstop"),
    progress: Callable[[CaseResult], None] | None = None,
) -> list[CaseResult]:
    """Run the chaos grid; returns one :class:`CaseResult` per trial."""
    if cases is None:
        cases = CHAOS_CASES
    runners = {"lossy": _run_lossy, "failstop": _run_failstop}
    results: list[CaseResult] = []
    for case in cases:
        for nprocs in sizes:
            for seed in seeds:
                for mode in modes:
                    if mode == "failstop" and nprocs < 2:
                        continue
                    res = runners[mode](case, seed, nprocs, n_per_rank)
                    results.append(res)
                    if progress is not None:
                        progress(res)
    return results


def chaos_report_lines(results: list[CaseResult]) -> list[str]:
    """Human-readable summary: per-case verdicts plus fault totals."""
    lines = []
    by_case: dict[tuple[str, str], list[CaseResult]] = {}
    for r in results:
        by_case.setdefault((r.case, r.mode), []).append(r)
    totals: dict[str, int] = {}
    failures = [r for r in results if not r.ok]
    for (name, mode), rs in sorted(by_case.items()):
        n_ok = sum(1 for r in rs if r.ok)
        lines.append(
            f"  {name:<16} {mode:<9} {n_ok}/{len(rs)} trials ok"
        )
        for r in rs:
            for k, v in r.metrics.items():
                totals[k] = totals.get(k, 0) + v
    lines.append("")
    lines.append(
        f"{len(results) - len(failures)}/{len(results)} trials passed"
    )
    if totals:
        lines.append(
            "fault events: " + ", ".join(
                f"{k.removeprefix('faults.')}={v}"
                for k, v in sorted(totals.items())
            )
        )
    for r in failures:
        lines.append(
            f"FAIL {r.case}/{r.mode} seed={r.seed} p={r.nprocs}: {r.detail}"
        )
    return lines
