"""Binding a :class:`~repro.faults.plan.FaultPlan` to a running world.

A :class:`FaultInjector` holds the per-run mutable state a plan needs:
per-rank operation counters (for nth-send fail-stops), per-rank RNG
streams (for link faults), and fired-failstop flags.  The runtime calls
three hooks:

* :meth:`check_failstop` from ``RankContext.charge`` — virtual-time
  deaths fire on the first compute charge at or past the deadline.
* :meth:`on_send_op` from ``RankContext.send_raw`` — nth-operation
  deaths fire immediately before the nth send.
* :meth:`plan_transmission` from the reliable-delivery layer — draws
  the per-message perturbations (drops, duplicate, delay, reorder).

A firing fail-stop records the rank as dead in the world's membership
(the perfect failure detector) and raises
:class:`~repro.errors.RankFailStop` in the rank's own thread; the
executor treats that as a silent death, not a program error.

Every injected event increments a ``faults.*`` counter on the metrics
registry the injector was built with, so chaos runs surface their fault
activity through the standard ``repro.obs`` pipeline (and from there
into ``BENCH_*.json``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RankFailStop
from repro.faults.plan import FailStop, FaultPlan

__all__ = ["FaultInjector", "Transmission"]


@dataclass(frozen=True)
class Transmission:
    """The drawn perturbations for one message transmission."""

    drops: int = 0  # attempts lost before the successful one
    duplicate: bool = False  # deliver the message twice
    delay: float = 0.0  # extra wire latency (virtual seconds)
    reorder: bool = False  # overtake the previous in-flight message


_CLEAN = Transmission()


class FaultInjector:
    """Per-run mutable fault state derived from an immutable plan."""

    #: Cap on consecutive modeled drops of one message.  With drop_rate
    #: <= 0.3 the chance of hitting it is ~ 1e-21 per message; the cap
    #: exists so a pathological hand-written plan cannot stall a send
    #: near-forever in virtual time.
    MAX_DROPS = 40

    def __init__(
        self,
        plan: FaultPlan,
        nprocs: int,
        metrics,
        rank_map: dict[int, int] | None = None,
    ) -> None:
        self.plan = plan
        self.nprocs = nprocs
        self.metrics = metrics
        self.lossy = plan.lossy
        self.can_fail = plan.can_fail
        #: Runtime-rank -> plan-rank translation.  A standalone run is
        #: the identity; an engine job placed on arbitrary pool ranks
        #: maps each world rank back to its group rank, so the plan's
        #: targets, RNG streams and operation counters stay in the
        #: plan's own (group-rank) coordinates and the injected fault
        #: sequence is independent of where the job landed.
        self._rank_map = dict(rank_map) if rank_map is not None else None
        self._failstop: dict[int, FailStop] = {
            f.rank: f for f in plan.failstops if f.rank < nprocs
        }
        self._fired: set[int] = set()
        self._send_ops = [0] * nprocs
        self._streams = [plan.rank_stream(r) for r in range(nprocs)]
        self._slowdown = [
            plan.stragglers.get(r, 1.0) for r in range(nprocs)
        ]
        self.rto = plan.rto

    def _plan_rank(self, rank: int) -> int:
        return rank if self._rank_map is None else self._rank_map[rank]

    # -- fail-stop ----------------------------------------------------------

    def _die(self, rank: int, world) -> None:
        # ``rank`` is the runtime (world) rank: membership records it,
        # but the fired-flag is tracked in plan coordinates.
        self._fired.add(self._plan_rank(rank))
        self.metrics.counter("faults.failstops").inc()
        world.mark_failed(rank)
        raise RankFailStop(rank)

    def check_failstop(self, rank: int, t: float, world) -> None:
        """Fire a virtual-time-scheduled death for ``rank`` if due."""
        pr = self._plan_rank(rank)
        spec = self._failstop.get(pr)
        if (
            spec is not None
            and spec.at_time is not None
            and t >= spec.at_time
            and pr not in self._fired
        ):
            self._die(rank, world)

    def on_send_op(self, rank: int, t: float, world) -> None:
        """Count a send; fire an nth-operation death if this is the nth."""
        pr = self._plan_rank(rank)
        spec = self._failstop.get(pr)
        if spec is None:
            return
        if spec.at_time is not None:
            # A send is also a progress point for time-based deaths.
            self.check_failstop(rank, t, world)
            return
        self._send_ops[pr] += 1
        if self._send_ops[pr] == spec.at_op and pr not in self._fired:
            self._die(rank, world)

    # -- stragglers ---------------------------------------------------------

    def slowdown(self, rank: int) -> float:
        """Compute-time multiplier for ``rank`` (1.0 = no slowdown)."""
        return self._slowdown[self._plan_rank(rank)]

    # -- lossy links --------------------------------------------------------

    def plan_transmission(self, rank: int) -> Transmission:
        """Draw the perturbations for ``rank``'s next transmission.

        Draws always happen in the same fixed order (drops, duplicate,
        delay, reorder) from the sender's private stream, so the
        decision sequence is a pure function of (plan seed, rank, how
        many messages this rank has sent) — independent of scheduling.
        """
        link = self.plan.link
        if not link.any_active:
            return _CLEAN
        rng = self._streams[self._plan_rank(rank)]
        drops = 0
        if link.drop_rate > 0.0:
            while rng.random() < link.drop_rate and drops < self.MAX_DROPS:
                drops += 1
        duplicate = link.dup_rate > 0.0 and rng.random() < link.dup_rate
        delay = 0.0
        if link.delay_rate > 0.0 and rng.random() < link.delay_rate:
            delay = rng.random() * link.delay_seconds
        reorder = link.reorder_rate > 0.0 and rng.random() < link.reorder_rate
        if drops:
            self.metrics.counter("faults.retransmits").inc(drops)
        if duplicate:
            self.metrics.counter("faults.duplicates").inc()
        if delay:
            self.metrics.counter("faults.delays").inc()
        if reorder:
            self.metrics.counter("faults.reorders").inc()
        return Transmission(
            drops=drops, duplicate=duplicate, delay=delay, reorder=reorder
        )
