"""Reliable, exactly-once delivery over lossy simulated links.

When a fault plan perturbs message delivery, ``RankContext`` routes all
traffic through this layer, which implements the classic transport
recipe in virtual time:

Sender (:func:`reliable_send`)
    Every message to a given ``(dest, tag)`` channel carries a
    monotonically increasing sequence number in a :class:`Frame`.  The
    simulator's message passing cannot actually lose data, so a *drop*
    is modeled at the sender: each lost attempt charges the sender the
    retransmission timeout with exponential backoff (``rto * 2**i`` for
    attempt *i*), exactly the virtual-time cost an ack/retransmit
    protocol would pay, after which the message goes out.  Drops
    therefore cost time, never correctness — and the whole exchange
    stays deterministic because the number of drops comes from the
    sender's seeded fault stream, not from a racing ack.

Receiver (:func:`reliable_collect`)
    Frames with ``seq`` below the next expected are duplicates and are
    discarded; frames above it arrived out of order (the plan's
    ``reorder`` fault) and are held back in a per-channel buffer until
    the expected frame shows up.  Layers above the context see
    exactly-once, in-order messages and never know the link was lossy.

Delays and reorders perturb ``available_at`` / queue position only, so
a fault-free program's *result values* are bit-identical under any
lossy plan (virtual completion times of course differ — the faults cost
time by design).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable

from repro.runtime.channels import (
    ANY_SOURCE,
    Envelope,
    tag_is_wild,
    tag_matches,
)

__all__ = ["Frame", "reliable_send", "reliable_collect"]


@dataclass(frozen=True)
class Frame:
    """A sequence-numbered wrapper around one message payload."""

    seq: int
    payload: Any


def reliable_send(ctx, inj, dest: int, tag: Hashable, payload: Any, nbytes: int) -> None:
    """Send ``payload`` through the lossy link model (see module doc).

    ``nbytes`` is the payload's size computed *before* frame wrapping,
    so byte accounting matches the fault-free run exactly.
    """
    key = (dest, tag)
    seq = ctx._send_seq.get(key, 0)
    ctx._send_seq[key] = seq + 1
    tx = inj.plan_transmission(ctx.rank)
    # Each modeled drop costs the sender one backed-off retransmission
    # timeout of virtual time before the attempt that gets through.
    for i in range(tx.drops):
        ctx.clock.advance(inj.rto * (2 ** i))
    cm = ctx.cost_model
    # Same pricing as the fault-free path: the topology charges for the
    # tiers crossed (flat fabric == cm.wire_time, 0.0 for self-sends).
    wire = ctx.world.topology.path_cost(ctx.rank, dest, nbytes, cm)
    available_at = ctx.clock.t + wire + tx.delay
    ctx.trace.on_send(dest, tag, nbytes, ctx.clock.t)
    if ctx.tracer.enabled:
        ctx.tracer.on_send(dest, tag, nbytes, ctx.clock.t, available_at)
    env = Envelope(ctx.rank, tag, Frame(seq, payload), nbytes, available_at)
    mailbox = ctx.world.mailboxes[dest]
    mailbox.deliver(env, reorder=tx.reorder)
    if tx.duplicate:
        # The duplicate carries the same sequence number; the receiver
        # discards it.  It is link noise, not a logical message, so it
        # appears in no trace and costs the sender nothing extra.
        mailbox.deliver(env)


def _pop_buffered(ctx, source: int, tag: Hashable) -> Envelope | None:
    """Return a held-back in-order envelope matching the request, if any."""
    if source != ANY_SOURCE and not tag_is_wild(tag):
        keys = [(source, tag)] if (source, tag) in ctx._recv_buf else []
    else:
        keys = [
            (s, t)
            for (s, t) in ctx._recv_buf
            if source in (ANY_SOURCE, s) and tag_matches(tag, t)
        ]
    for key in keys:
        buf = ctx._recv_buf[key]
        nxt = ctx._recv_next.get(key, 0)
        env = buf.pop(nxt, None)
        if env is not None:
            if not buf:
                del ctx._recv_buf[key]
            ctx._recv_next[key] = nxt + 1
            return env
    return None


def reliable_collect(ctx, inj, source: int, tag: Hashable) -> Envelope:
    """Blocking receive with duplicate suppression and reorder repair.

    Returns an :class:`Envelope` whose payload is already unwrapped
    (the :class:`Frame` is internal to this layer).
    """
    env = _pop_buffered(ctx, source, tag)
    if env is not None:
        return env
    mailbox = ctx.world.mailboxes[ctx.rank]
    while True:
        raw = mailbox.collect(source, tag)
        frame = raw.payload
        if not isinstance(frame, Frame):
            # Message from a pre-fault-plan path (e.g. delivered by a
            # test harness directly): pass through untouched.
            return raw
        key = (raw.source, raw.tag)
        nxt = ctx._recv_next.get(key, 0)
        if frame.seq < nxt:
            continue  # duplicate of an already-delivered frame
        unwrapped = Envelope(
            raw.source, raw.tag, frame.payload, raw.nbytes, raw.available_at
        )
        if frame.seq > nxt:
            # Arrived ahead of its predecessors: hold it back.
            ctx._recv_buf.setdefault(key, {})[frame.seq] = unwrapped
            buffered = _pop_buffered(ctx, source, tag)
            if buffered is not None:
                return buffered
            continue
        ctx._recv_next[key] = nxt + 1
        return unwrapped
