"""Reproduction of *Global-View Abstractions for User-Defined Reductions
and Scans* (Deitz, Callahan, Chamberlain, Snyder — PPoPP 2006).

Quick tour
----------
>>> from repro import spmd_run, global_reduce
>>> from repro.ops import MinKOp
>>> import numpy as np
>>> def program(comm):
...     local = np.arange(comm.rank, 100, comm.size)   # my block
...     return global_reduce(comm, MinKOp(3), local)
>>> spmd_run(program, nprocs=4).returns[0]
array([2., 1., 0.])

Long-lived services use the persistent engine instead of per-call
``spmd_run`` — same results, amortized pool and schedule tuning:

>>> from repro import Engine
>>> with Engine(nprocs=8) as engine:
...     session = engine.session()
...     handles = [session.submit(program, nprocs=4) for _ in range(100)]
...     results = [h.result() for h in handles]

Layers (bottom-up):

* :mod:`repro.runtime` — SPMD executor, virtual time, cost models
* :mod:`repro.engine` — persistent multi-tenant engine (resident rank
  pool, job scheduling, schedule caching, backpressure)
* :mod:`repro.mpi` — simulated MPI (communicators, 12 built-in ops,
  user-defined ops, collectives)
* :mod:`repro.localview` — the paper's Section-2 LOCAL_* routines
* :mod:`repro.core` — **the contribution**: global-view operators and
  the reduce/scan drivers of Listings 2–3
* :mod:`repro.ops` — the operator library (mink, mini, counts, sorted,
  extrema, ...)
* :mod:`repro.rsmpi` — RSMPI API + the operator-DSL preprocessor
* :mod:`repro.arrays` — Chapel-style distributed arrays
* :mod:`repro.prefix` — parallel-prefix networks (Ladner–Fischer et al.)
* :mod:`repro.nas` — NAS IS and MG(ZRAN3) substrates for Figures 2–3
* :mod:`repro.analysis` — speedup series and paper-style reports
"""

from repro.core import (
    ReduceScanOp,
    check_operator,
    from_binary,
    global_reduce,
    global_reduce_many,
    global_scan,
    global_xscan,
    make_op,
)
from repro.engine import Engine, JobHandle, Session
from repro.runtime import CostModel, SpmdResult, spmd_run

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "spmd_run",
    "SpmdResult",
    "CostModel",
    "Engine",
    "Session",
    "JobHandle",
    "ReduceScanOp",
    "make_op",
    "from_binary",
    "global_reduce",
    "global_reduce_many",
    "global_scan",
    "global_xscan",
    "check_operator",
]
