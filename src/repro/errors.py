"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` from user operator code,
for instance) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "RuntimeAbort",
    "RankFailStop",
    "RankFailedError",
    "RevokedError",
    "DeadlockError",
    "format_rank_states",
    "SpmdError",
    "SpmdTimeout",
    "EngineClosed",
    "EngineSaturated",
    "EngineDegraded",
    "JobCancelled",
    "CommunicatorError",
    "TransferError",
    "RankMismatchError",
    "TruncationError",
    "OperatorError",
    "OperatorLawError",
    "DistributionError",
    "PreprocessorError",
    "DslSyntaxError",
    "DslSemanticError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class RuntimeAbort(ReproError):
    """Raised inside a rank when the SPMD run is being torn down.

    This is used to unwind ranks that are blocked in ``recv`` after another
    rank has failed; user code should not catch it.
    """


class RankFailStop(ReproError):
    """Internal: a fault-injection plan fail-stopped this rank.

    Raised inside the failing rank's own thread at its scheduled death
    point and caught by the executor, which records the rank as dead
    without tearing the run down.  User code never sees it.
    """

    def __init__(self, rank: int):
        self.rank = rank
        super().__init__(f"rank {rank} fail-stopped by fault plan")


class RankFailedError(ReproError):
    """A peer rank has fail-stopped (ULFM ``MPI_ERR_PROC_FAILED``).

    Raised in a *surviving* rank when it waits on a message from a rank
    the failure detector knows to be dead.  Resilient drivers catch it,
    revoke the communicator and retry over the survivors; non-resilient
    code lets it propagate, turning what would have been a hang into a
    clean :class:`SpmdError`.
    """

    def __init__(self, rank: int, detail: str = ""):
        self.rank = rank
        msg = f"rank {rank} has failed"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class RevokedError(ReproError):
    """The communicator has been revoked (ULFM ``MPI_ERR_REVOKED``).

    After any member calls :meth:`~repro.mpi.comm.Communicator.revoke`,
    every pending and future operation on that communicator raises this
    error, which is what releases survivors blocked mid-collective so
    they can reach the recovery protocol (``agree`` + ``shrink``).
    """

    def __init__(self, cid=None):
        self.cid = cid
        extra = f" (context id {cid!r})" if cid is not None else ""
        super().__init__(f"communicator has been revoked{extra}")


class DeadlockError(ReproError):
    """The hang watchdog found every active rank blocked with no
    matching message queued — a guaranteed deadlock.

    The message lists each blocked rank's pending ``(source, tag)``
    wait, replacing the silent wall-clock timeout that used to be the
    only way such bugs surfaced.
    """


def format_rank_states(rank_states: list[dict] | None) -> str:
    """Render per-rank diagnostic dicts (as produced by
    ``World.rank_states()``) into an indented multi-line block."""
    if not rank_states:
        return ""
    lines = []
    for st in rank_states:
        wait = st.get("waiting_for")
        wait_s = (
            f" waiting on (source={wait[0]}, tag={wait[1]!r})"
            if wait is not None else ""
        )
        lines.append(
            f"  rank {st['rank']}: {st['status']}{wait_s}, "
            f"t={st['clock']:.6e}s, pending={st['pending_count']}"
        )
    return "\n".join(lines)


class SpmdError(ReproError):
    """One or more ranks of an SPMD run raised an exception.

    Attributes
    ----------
    failures:
        Mapping from rank to the exception instance raised on that rank.
    rank_states:
        Optional per-rank diagnostic dicts (status, blocked wait, virtual
        clock, queued-message count) captured at failure time.
    """

    def __init__(
        self,
        failures: dict[int, BaseException],
        rank_states: list[dict] | None = None,
    ):
        self.failures = dict(failures)
        self.rank_states = rank_states
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first_rank = min(self.failures)
        first = self.failures[first_rank]
        msg = (
            f"SPMD run failed on rank(s) {ranks}; "
            f"first failure (rank {first_rank}): {type(first).__name__}: {first}"
        )
        diag = format_rank_states(rank_states)
        if diag:
            msg += "\nper-rank state at failure:\n" + diag
        super().__init__(msg)


class SpmdTimeout(ReproError):
    """An SPMD run did not complete within its wall-clock timeout.

    Attributes
    ----------
    rank_states:
        Optional per-rank diagnostic dicts (status, blocked wait, virtual
        clock, queued-message count) captured when the timeout fired, so
        the stuck ranks are identifiable without re-running under a
        tracer.
    """

    def __init__(self, message: str, rank_states: list[dict] | None = None):
        self.rank_states = rank_states
        diag = format_rank_states(rank_states)
        if diag:
            message += "\nper-rank state at timeout:\n" + diag
        super().__init__(message)


class EngineClosed(ReproError):
    """A job was submitted to an :class:`repro.engine.Engine` that has
    been shut down (or is draining for shutdown)."""


class EngineSaturated(ReproError):
    """Admission control rejected a job: the engine's pending queue is at
    its configured depth and the caller asked not to block (or its
    blocking wait timed out).  Back off and resubmit."""


class EngineDegraded(EngineSaturated):
    """Admission control rejected a job because the pool is running
    below its capacity floor: enough ranks are quarantined that the job
    cannot be placed at its requested size.  Subclasses
    :class:`EngineSaturated` so existing backpressure handlers keep
    working; clients that care can catch it specifically, resubmit with
    ``allow_shrink=True``, or back off until the supervisor revives
    quarantined ranks."""


class JobCancelled(ReproError):
    """The job was cancelled before completion — either explicitly via
    :meth:`~repro.engine.JobHandle.cancel` or by a forced engine
    shutdown.  Raised by :meth:`~repro.engine.JobHandle.result`."""


class CommunicatorError(ReproError):
    """Invalid use of a communicator (bad rank, bad tag, empty group...)."""


class TransferError(CommunicatorError):
    """A payload cannot cross a rank boundary.

    Raised at the *send* boundary (:func:`repro.util.sizing.copy_for_transfer`)
    or the process-backend frame codec when an operator state is neither
    :class:`~repro.util.sizing.TransferSafe` nor copyable/picklable.  The
    message names the offending type, so the failure surfaces where the
    payload entered the channel layer instead of deep inside it.
    """


class RankMismatchError(CommunicatorError):
    """A collective was called with inconsistent arguments across ranks."""


class TruncationError(CommunicatorError):
    """A receive buffer was too small for the incoming message."""


class OperatorError(ReproError):
    """A reduction/scan operator is malformed or misused."""


class OperatorLawError(OperatorError):
    """An operator violates an algebraic law it is required to satisfy.

    Raised by :func:`repro.core.validation.check_operator` when, e.g., the
    identity law or sampled associativity fails.
    """


class DistributionError(ReproError):
    """Invalid distributed-array distribution or an unsupported operation
    for the array's distribution (e.g. a scan over a cyclic distribution)."""


class PreprocessorError(ReproError):
    """Base class for RSMPI preprocessor (DSL) errors."""


class DslSyntaxError(PreprocessorError):
    """The RSMPI operator DSL source failed to tokenize or parse."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        loc = f" at line {line}" if line is not None else ""
        loc += f", column {col}" if col is not None else ""
        super().__init__(f"{message}{loc}")


class DslSemanticError(PreprocessorError):
    """The RSMPI operator DSL parsed but is semantically invalid
    (unknown state field, missing required function, bad types...)."""


class VerificationError(ReproError):
    """A benchmark kernel failed its verification phase."""
