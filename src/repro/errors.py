"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` from user operator code,
for instance) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "RuntimeAbort",
    "SpmdError",
    "SpmdTimeout",
    "CommunicatorError",
    "RankMismatchError",
    "TruncationError",
    "OperatorError",
    "OperatorLawError",
    "DistributionError",
    "PreprocessorError",
    "DslSyntaxError",
    "DslSemanticError",
    "VerificationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class RuntimeAbort(ReproError):
    """Raised inside a rank when the SPMD run is being torn down.

    This is used to unwind ranks that are blocked in ``recv`` after another
    rank has failed; user code should not catch it.
    """


class SpmdError(ReproError):
    """One or more ranks of an SPMD run raised an exception.

    Attributes
    ----------
    failures:
        Mapping from rank to the exception instance raised on that rank.
    """

    def __init__(self, failures: dict[int, BaseException]):
        self.failures = dict(failures)
        ranks = ", ".join(str(r) for r in sorted(self.failures))
        first_rank = min(self.failures)
        first = self.failures[first_rank]
        super().__init__(
            f"SPMD run failed on rank(s) {ranks}; "
            f"first failure (rank {first_rank}): {type(first).__name__}: {first}"
        )


class SpmdTimeout(ReproError):
    """An SPMD run did not complete within its wall-clock timeout."""


class CommunicatorError(ReproError):
    """Invalid use of a communicator (bad rank, bad tag, empty group...)."""


class RankMismatchError(CommunicatorError):
    """A collective was called with inconsistent arguments across ranks."""


class TruncationError(CommunicatorError):
    """A receive buffer was too small for the incoming message."""


class OperatorError(ReproError):
    """A reduction/scan operator is malformed or misused."""


class OperatorLawError(OperatorError):
    """An operator violates an algebraic law it is required to satisfy.

    Raised by :func:`repro.core.validation.check_operator` when, e.g., the
    identity law or sampled associativity fails.
    """


class DistributionError(ReproError):
    """Invalid distributed-array distribution or an unsupported operation
    for the array's distribution (e.g. a scan over a cyclic distribution)."""


class PreprocessorError(ReproError):
    """Base class for RSMPI preprocessor (DSL) errors."""


class DslSyntaxError(PreprocessorError):
    """The RSMPI operator DSL source failed to tokenize or parse."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        loc = f" at line {line}" if line is not None else ""
        loc += f", column {col}" if col is not None else ""
        super().__init__(f"{message}{loc}")


class DslSemanticError(PreprocessorError):
    """The RSMPI operator DSL parsed but is semantically invalid
    (unknown state field, missing required function, bad types...)."""


class VerificationError(ReproError):
    """A benchmark kernel failed its verification phase."""
