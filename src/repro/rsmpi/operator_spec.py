"""Programmatic RSMPI operator declarations (decorator style).

The middle road between writing a full :class:`ReduceScanOp` subclass
and the textual DSL: declare the state record and register the
functions, in the same order and with the same names as a Listing-8
operator block::

    sorted_spec = OperatorSpec(
        "sorted",
        commutative=False,
        state={"first": INT_MAX, "last": INT_MIN, "status": 1},
    )

    @sorted_spec.ident
    def _(s):
        s.first, s.last, s.status = INT_MAX, INT_MIN, 1

    @sorted_spec.pre_accum
    def _(s, i):
        s.first = i

    @sorted_spec.accum
    def _(s, i):
        if s.last > i:
            s.status = 0
        s.last = i

    @sorted_spec.combine
    def _(s1, s2):
        s1.status &= s2.status and (s1.last <= s2.first)
        s1.last = s2.last

    @sorted_spec.generate
    def _(s):
        return s.status

    sorted_op = sorted_spec.build()

All registered functions *mutate* their state argument (the C/RSMPI
convention); the spec wraps them into the return-the-state protocol the
drivers expect.  The DSL preprocessor's code generator targets exactly
this class.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

import numpy as np

from repro.core.operator import ReduceScanOp, state_equal
from repro.errors import DslSemanticError, OperatorError
from repro.util.sizing import payload_nbytes

__all__ = ["OperatorSpec", "StateRecord", "INT_MAX", "INT_MIN", "DBL_MAX", "DBL_MIN"]

INT_MAX = 2**31 - 1
INT_MIN = -(2**31)
DBL_MAX = np.finfo(np.float64).max
DBL_MIN = -np.finfo(np.float64).max


_COERCE = {
    "int": int,  # Python int() truncates toward zero, like C conversion
    "long": int,
    "float": float,
    "double": float,
    "bool": lambda v: int(bool(v)),
}


class StateRecord:
    """A mutable record with a fixed field set (the operator's ``state``
    struct).  Fields are created from the spec's defaults; assigning an
    unknown field raises, catching DSL typos early.

    When field *types* are supplied (the DSL path), scalar assignments
    are coerced to the declared C type — so ``double n; ... s->n = 0;``
    really stores ``0.0`` and later divisions stay floating-point, and
    assigning a float expression to an ``int`` field truncates toward
    zero exactly as C would.  (Array fields are stored as lists and not
    element-coerced.)
    """

    __slots__ = ("_fields", "_types")

    def __init__(
        self,
        defaults: Mapping[str, Any],
        types: Mapping[str, str] | None = None,
    ):
        object.__setattr__(self, "_fields", dict())
        object.__setattr__(self, "_types", dict(types) if types else None)
        for k, v in defaults.items():
            if isinstance(v, np.ndarray):
                v = v.copy()
            elif isinstance(v, list):
                v = list(v)
            self._fields[k] = v

    def __getattr__(self, name: str) -> Any:
        # Protocol probes (__deepcopy__, __getstate__, ...) and the slot
        # itself must fail fast, or deepcopy/pickle would recurse through
        # this very method before _fields exists.
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            fields = object.__getattribute__(self, "_fields")
        except AttributeError:
            raise AttributeError(name) from None
        try:
            return fields[name]
        except KeyError:
            raise AttributeError(
                f"state has no field {name!r}; fields: {sorted(fields)}"
            ) from None

    def __setattr__(self, name: str, value: Any) -> None:
        if name in ("_fields", "_types"):  # slot restoration during copy
            object.__setattr__(self, name, value)
            return
        if name not in self._fields:
            raise AttributeError(
                f"state has no field {name!r}; fields: {sorted(self._fields)}"
            )
        types = object.__getattribute__(self, "_types")
        if types is not None and not isinstance(value, (list, np.ndarray)):
            ctype = types.get(name)
            if ctype is not None:
                value = _COERCE[ctype](value)
        self._fields[name] = value

    def transfer_nbytes(self) -> int:
        return payload_nbytes(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateRecord):
            return NotImplemented
        if self._fields.keys() != other._fields.keys():
            return False
        for k, v in self._fields.items():
            w = other._fields[k]
            if isinstance(v, np.ndarray) or isinstance(w, np.ndarray):
                if not np.array_equal(v, w):
                    return False
            elif v != w:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(f"{k}={v!r}" for k, v in self._fields.items())
        return f"StateRecord({inner})"


class _SpecOp(ReduceScanOp):
    """ReduceScanOp backed by an OperatorSpec's registered functions."""

    def __init__(self, spec: "OperatorSpec"):
        self._spec = spec
        self.commutative = spec.commutative

    @property
    def name(self) -> str:
        return self._spec.name

    def ident(self):
        s = StateRecord(self._spec.state_defaults, self._spec.state_types)
        if self._spec.fn_ident is not None:
            self._spec.fn_ident(s)
        return s

    def pre_accum(self, state, x):
        if self._spec.fn_pre_accum is not None:
            self._spec.call_with_input(self._spec.fn_pre_accum, state, x)
        return state

    def accum(self, state, x):
        self._spec.call_with_input(self._spec.fn_accum, state, x)
        return state

    def post_accum(self, state, x):
        if self._spec.fn_post_accum is not None:
            self._spec.call_with_input(self._spec.fn_post_accum, state, x)
        return state

    def combine(self, s1, s2):
        self._spec.fn_combine(s1, s2)
        return s1

    def gen(self, state):
        if self._spec.fn_generate is not None:
            return self._spec.fn_generate(state)
        return state

    def red_gen(self, state):
        if self._spec.fn_red_generate is not None:
            return self._spec.fn_red_generate(state)
        return self.gen(state)

    def scan_gen(self, state, x):
        if self._spec.fn_scan_generate is not None:
            return self._spec.call_with_input(
                self._spec.fn_scan_generate, state, x
            )
        return self.gen(state)

    def state_eq(self, s1, s2):
        # field-wise comparison with float tolerance (exact == would
        # flag floating-point drift in e.g. Chan-style combines as a
        # law violation)
        return state_equal(s1._fields, s2._fields)


class OperatorSpec:
    """Collects an RSMPI operator declaration and builds the operator."""

    def __init__(
        self,
        name: str,
        *,
        commutative: bool = True,
        state: Mapping[str, Any] | None = None,
        state_types: Mapping[str, str] | None = None,
    ):
        self.name = name
        self.commutative = bool(commutative)
        self.state_defaults: dict[str, Any] = dict(state or {})
        #: optional field -> C-type map enabling C-style assignment
        #: coercion in the states (the DSL path supplies it)
        self.state_types: dict[str, str] | None = (
            dict(state_types) if state_types else None
        )
        self.fn_ident: Callable | None = None
        self.fn_pre_accum: Callable | None = None
        self.fn_accum: Callable | None = None
        self.fn_post_accum: Callable | None = None
        self.fn_combine: Callable | None = None
        self.fn_generate: Callable | None = None
        self.fn_red_generate: Callable | None = None
        self.fn_scan_generate: Callable | None = None

    # -- registration decorators ---------------------------------------------

    def ident(self, fn: Callable) -> Callable:
        self.fn_ident = fn
        return fn

    def pre_accum(self, fn: Callable) -> Callable:
        self.fn_pre_accum = fn
        return fn

    def accum(self, fn: Callable) -> Callable:
        self.fn_accum = fn
        return fn

    def post_accum(self, fn: Callable) -> Callable:
        self.fn_post_accum = fn
        return fn

    def combine(self, fn: Callable) -> Callable:
        self.fn_combine = fn
        return fn

    def generate(self, fn: Callable) -> Callable:
        self.fn_generate = fn
        return fn

    def red_generate(self, fn: Callable) -> Callable:
        self.fn_red_generate = fn
        return fn

    def scan_generate(self, fn: Callable) -> Callable:
        self.fn_scan_generate = fn
        return fn

    # -- input plumbing ----------------------------------------------------------

    @staticmethod
    def call_with_input(fn: Callable, state: Any, x: Any) -> Any:
        """Multi-parameter accumulate functions receive tuple inputs
        unpacked: ``accum(state s, int v, int i)`` takes ``(v, i)``."""
        nargs = fn.__code__.co_argcount
        if nargs <= 2:
            return fn(state, x)
        if isinstance(x, np.ndarray):
            x = tuple(x)
        if not isinstance(x, (tuple, list)) or len(x) != nargs - 1:
            raise OperatorError(
                f"{fn.__name__} expects {nargs - 1} input components, "
                f"got {x!r}"
            )
        return fn(state, *x)

    # -- build ----------------------------------------------------------------------

    def build(self) -> ReduceScanOp:
        """Validate the declaration and return the operator."""
        if self.fn_accum is None:
            raise DslSemanticError(
                f"operator {self.name!r}: missing required function 'accum'"
            )
        if self.fn_combine is None:
            raise DslSemanticError(
                f"operator {self.name!r}: missing required function 'combine'"
            )
        if not self.state_defaults and self.fn_ident is None:
            raise DslSemanticError(
                f"operator {self.name!r}: declare a state block or an "
                "ident function"
            )
        return _SpecOp(self)
