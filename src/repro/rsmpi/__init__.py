"""RSMPI: global-view user-defined reductions and scans for MPI
programs (paper Section 4)."""

from repro.rsmpi.api import (
    RSMPI_Reduce,
    RSMPI_Reduceall,
    RSMPI_Scan,
    RSMPI_Xscan,
)
from repro.rsmpi.iterators import indexed, mapped, materialize, strided
from repro.rsmpi.library import OPERATOR_SOURCES, load_operator, operator_names
from repro.rsmpi.operator_spec import (
    DBL_MAX,
    DBL_MIN,
    INT_MAX,
    INT_MIN,
    OperatorSpec,
    StateRecord,
)
from repro.rsmpi.preprocessor import (
    compile_operator,
    compile_operator_spec,
    parse_operator,
)

__all__ = [
    "RSMPI_Reduce",
    "RSMPI_Reduceall",
    "RSMPI_Scan",
    "RSMPI_Xscan",
    "indexed",
    "mapped",
    "strided",
    "materialize",
    "OperatorSpec",
    "StateRecord",
    "INT_MAX",
    "INT_MIN",
    "DBL_MAX",
    "DBL_MIN",
    "compile_operator",
    "compile_operator_spec",
    "parse_operator",
    "OPERATOR_SOURCES",
    "load_operator",
    "operator_names",
]
