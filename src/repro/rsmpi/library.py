"""A library of ready-made RSMPI DSL operators.

The paper's point about RSMPI is exactly this module: "it makes it
possible to build up a library of operators that compute an entire
reduction or scan, not just the combine portion."  Each entry is DSL
*source* (so it doubles as documentation and as preprocessor test
corpus); :func:`load_operator` compiles one on demand, with parameters.

>>> sorted_op = load_operator("sorted")
>>> mink = load_operator("mink", k=5)

Every library operator is tested against its hand-written twin in
``repro.ops``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReproError
from repro.rsmpi.preprocessor import compile_operator

__all__ = ["OPERATOR_SOURCES", "load_operator", "operator_names"]

OPERATOR_SOURCES: dict[str, str] = {
    # ------------------------------------------------------------------
    # Note: this is Listing 8 hardened with a `seen` flag.  The paper's
    # sentinel version (INT_MAX/INT_MIN boundaries) assumes every rank
    # holds data; an identity state combined on the LEFT keeps
    # first == INT_MAX, which silently passes a later boundary check it
    # should have failed.  The library version must satisfy the identity
    # law (check_operator flags the sentinel version), so empty states
    # are tracked explicitly.  The verbatim Listing 8 lives in the test
    # suite as the preprocessor's fidelity corpus.
    "sorted": """
    rsmpi operator sorted {
      non-commutative
      state { int first, last; int status; int seen; }
      void ident(state s) {
        s->first = 0; s->last = 0; s->status = 1; s->seen = 0;
      }
      void accum(state s, int i) {
        if (!s->seen) { s->first = i; s->seen = 1; }
        else if (s->last > i) s->status = 0;
        s->last = i;
      }
      void combine(state s1, state s2) {
        if (s2->seen) {
          if (s1->seen) {
            s1->status &= s2->status && (s1->last <= s2->first);
            s1->last = s2->last;
          } else {
            s1->first = s2->first; s1->last = s2->last;
            s1->status = s2->status; s1->seen = 1;
          }
        }
      }
      int generate(state s) { return s->status; }
    }
    """,
    # ------------------------------------------------------------------
    "mink": """
    rsmpi operator mink {
      commutative
      param int k = 10;
      state { int v[k]; }
      void ident(state s) {
        int i;
        for (i = 0; i < k; i++) s->v[i] = INT_MAX;
      }
      void accum(state s, int x) {
        int i, tmp;
        if (x < s->v[0]) {
          s->v[0] = x;
          for (i = 1; i < k; i++)
            if (s->v[i-1] < s->v[i]) {
              tmp = s->v[i]; s->v[i] = s->v[i-1]; s->v[i-1] = tmp;
            }
        }
      }
      void combine(state s1, state s2) {
        int i;
        for (i = 0; i < k; i++) accum(s1, s2->v[i]);
      }
      void generate(state s) { return s->v; }
    }
    """,
    # ------------------------------------------------------------------
    "maxk": """
    rsmpi operator maxk {
      commutative
      param int k = 10;
      state { int v[k]; }
      void ident(state s) {
        int i;
        for (i = 0; i < k; i++) s->v[i] = INT_MIN;
      }
      void accum(state s, int x) {
        int i, tmp;
        if (x > s->v[0]) {
          s->v[0] = x;
          for (i = 1; i < k; i++)
            if (s->v[i-1] > s->v[i]) {
              tmp = s->v[i]; s->v[i] = s->v[i-1]; s->v[i-1] = tmp;
            }
        }
      }
      void combine(state s1, state s2) {
        int i;
        for (i = 0; i < k; i++) accum(s1, s2->v[i]);
      }
      void generate(state s) { return s->v; }
    }
    """,
    # ------------------------------------------------------------------
    "counts": """
    rsmpi operator counts {
      commutative
      param int k = 8;
      param int base = 1;
      state { int v[k]; }
      void ident(state s) {
        int i;
        for (i = 0; i < k; i++) s->v[i] = 0;
      }
      void accum(state s, int x) { s->v[x - base] += 1; }
      void combine(state s1, state s2) {
        int i;
        for (i = 0; i < k; i++) s1->v[i] += s2->v[i];
      }
      void red_generate(state s) { return s->v; }
      int scan_generate(state s, int x) { return s->v[x - base]; }
    }
    """,
    # ------------------------------------------------------------------
    "mini": """
    rsmpi operator mini {
      commutative
      state { double val; int loc; int seen; }
      void ident(state s) { s->val = DBL_MAX; s->loc = -1; s->seen = 0; }
      void accum(state s, double x, int i) {
        if (!s->seen || x < s->val || (x == s->val && i < s->loc)) {
          s->val = x; s->loc = i; s->seen = 1;
        }
      }
      void combine(state s1, state s2) {
        if (s2->seen) {
          if (!s1->seen || s2->val < s1->val ||
              (s2->val == s1->val && s2->loc < s1->loc)) {
            s1->val = s2->val; s1->loc = s2->loc; s1->seen = 1;
          }
        }
      }
      void red_generate(state s) { return s; }
    }
    """,
    # ------------------------------------------------------------------
    "maxi": """
    rsmpi operator maxi {
      commutative
      state { double val; int loc; int seen; }
      void ident(state s) { s->val = DBL_MIN; s->loc = -1; s->seen = 0; }
      void accum(state s, double x, int i) {
        if (!s->seen || x > s->val || (x == s->val && i < s->loc)) {
          s->val = x; s->loc = i; s->seen = 1;
        }
      }
      void combine(state s1, state s2) {
        if (s2->seen) {
          if (!s1->seen || s2->val > s1->val ||
              (s2->val == s1->val && s2->loc < s1->loc)) {
            s1->val = s2->val; s1->loc = s2->loc; s1->seen = 1;
          }
        }
      }
      void red_generate(state s) { return s; }
    }
    """,
    # ------------------------------------------------------------------
    "sum": """
    rsmpi operator sum {
      commutative
      state { double total; }
      void ident(state s) { s->total = 0; }
      void accum(state s, double x) { s->total += x; }
      void combine(state s1, state s2) { s1->total += s2->total; }
      double generate(state s) { return s->total; }
    }
    """,
    # ------------------------------------------------------------------
    "range": """
    rsmpi operator range {
      commutative
      state { double lo; double hi; int seen; }
      void ident(state s) { s->lo = DBL_MAX; s->hi = DBL_MIN; s->seen = 0; }
      void accum(state s, double x) {
        if (x < s->lo) s->lo = x;
        if (x > s->hi) s->hi = x;
        s->seen = 1;
      }
      void combine(state s1, state s2) {
        if (s2->seen) {
          if (s2->lo < s1->lo) s1->lo = s2->lo;
          if (s2->hi > s1->hi) s1->hi = s2->hi;
          s1->seen = 1;
        }
      }
      void red_generate(state s) { return s; }
    }
    """,
    # ------------------------------------------------------------------
    "meanvar": """
    rsmpi operator meanvar {
      commutative
      state { double n; double mean; double m2; }
      void ident(state s) { s->n = 0; s->mean = 0; s->m2 = 0; }
      void accum(state s, double x) {
        double delta;
        s->n += 1;
        delta = x - s->mean;
        s->mean += delta / s->n;
        s->m2 += delta * (x - s->mean);
      }
      void combine(state s1, state s2) {
        double n, delta;
        if (s2->n > 0) {
          if (s1->n == 0) {
            s1->n = s2->n; s1->mean = s2->mean; s1->m2 = s2->m2;
          } else {
            n = s1->n + s2->n;
            delta = s2->mean - s1->mean;
            s1->mean += delta * s2->n / n;
            s1->m2 += s2->m2 + delta * delta * (s1->n * s2->n / n);
            s1->n = n;
          }
        }
      }
      void red_generate(state s) { return s; }
    }
    """,
}


def operator_names() -> list[str]:
    """Names available to :func:`load_operator`."""
    return sorted(OPERATOR_SOURCES)


def load_operator(name: str, **params: Any):
    """Compile a library operator by name; keyword arguments override its
    ``param`` constants (e.g. ``load_operator("mink", k=5)``)."""
    try:
        src = OPERATOR_SOURCES[name]
    except KeyError:
        raise ReproError(
            f"unknown library operator {name!r}; available: "
            f"{operator_names()}"
        ) from None
    return compile_operator(src, params=params or None)
