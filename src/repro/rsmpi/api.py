"""RSMPI: the global-view abstraction for MPI programs (paper Section 4).

RSMPI (Reduce and Scan MPI) lets an MPI programmer apply a user-defined
operator to the *conceptual entire array* in one call — "it makes it
possible to build up a library of operators that compute an entire
reduction or scan, not just the combine portion".

The call shapes mirror the paper's::

    RSMPI_Reduceall(&result, sorted, iter, KEY_ARRAY(iter.i))

becomes::

    result = RSMPI_Reduceall(sorted_op, key_array, comm)

with the communicator defaulting to the calling context's world
communicator ("we allow the common case of using the MPI_COMM_WORLD
communication group as a default if another is omitted" — here the
default is simply the last positional argument being optional only in
the sense that every call site already holds its communicator; Python
has no ambient MPI_COMM_WORLD).

Operators may come from three places, all equivalent:

* any :class:`~repro.core.operator.ReduceScanOp` subclass (Chapel style);
* :mod:`repro.rsmpi.operator_spec` declarations (decorator style);
* the DSL preprocessor (:func:`repro.rsmpi.compile_operator`), the
  closest analogue of the paper's Perl preprocessor.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.operator import ReduceScanOp
from repro.core.reduce import global_reduce
from repro.core.scan import global_scan, global_xscan
from repro.mpi.comm import Communicator
from repro.rsmpi.iterators import materialize

__all__ = ["RSMPI_Reduce", "RSMPI_Reduceall", "RSMPI_Scan", "RSMPI_Xscan"]


def RSMPI_Reduceall(
    op: ReduceScanOp,
    iterator: Iterable[Any],
    comm: Communicator,
    **kwargs: Any,
) -> Any:
    """Reduce the conceptual global array; result on **all** ranks."""
    return global_reduce(comm, op, materialize(iterator), root=None, **kwargs)


def RSMPI_Reduce(
    op: ReduceScanOp,
    iterator: Iterable[Any],
    comm: Communicator,
    root: int = 0,
    **kwargs: Any,
) -> Any:
    """Reduce the conceptual global array; result on ``root`` only."""
    return global_reduce(comm, op, materialize(iterator), root=root, **kwargs)


def RSMPI_Scan(
    op: ReduceScanOp,
    iterator: Iterable[Any],
    comm: Communicator,
    **kwargs: Any,
) -> list[Any]:
    """Inclusive scan of the conceptual global array; each rank returns
    the outputs for its local elements."""
    return global_scan(comm, op, materialize(iterator), **kwargs)


def RSMPI_Xscan(
    op: ReduceScanOp,
    iterator: Iterable[Any],
    comm: Communicator,
    **kwargs: Any,
) -> list[Any]:
    """Exclusive scan of the conceptual global array."""
    return global_xscan(comm, op, materialize(iterator), **kwargs)
