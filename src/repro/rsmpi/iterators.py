"""RSMPI iterators: descriptions of the local values to accumulate.

In the paper, "the programmer first defines an iterator to describe the
values passed to the accumulate function and then calls an RSMPI routine
to reduce or scan"; the accumulate function "is applied to the input
expression within this iterator and then inlined into the code".

Here an iterator is any object the accumulate phase can walk:

* a NumPy array or Python sequence — used directly (and eligible for
  the operator's vectorized ``accum_block``);
* :func:`indexed` — pairs each local element with its **global** index,
  the ``[i in 1..n] (A(i), i)`` idiom for mini/maxi/extrema;
* :func:`mapped` — applies an input expression element-wise, lazily;
* :func:`strided` — a strided view of a local array.

Iterators with a known length and array backing stay vectorizable;
generator-backed iterators fall back to the per-element ``accum`` path.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

__all__ = ["indexed", "mapped", "strided", "materialize"]


def indexed(local: np.ndarray, global_offset: int) -> np.ndarray:
    """Pairs ``(value, global_index)`` for a contiguous local block that
    starts at ``global_offset`` in the conceptual global array."""
    local = np.asarray(local)
    idx = np.arange(global_offset, global_offset + len(local), dtype=np.float64)
    return np.column_stack([local.astype(np.float64, copy=False), idx])


def mapped(fn: Callable[[Any], Any], values: Iterable[Any]) -> list[Any]:
    """Apply the input expression ``fn`` to each local value."""
    return [fn(v) for v in values]


def strided(local: np.ndarray, start: int = 0, stop: int | None = None, step: int = 1) -> np.ndarray:
    """A strided (no-copy) view of a local array."""
    return np.asarray(local)[start:stop:step]


def materialize(it: Iterable[Any]) -> Sequence[Any] | np.ndarray:
    """Give the accumulate phase something with ``len`` and indexing."""
    if isinstance(it, np.ndarray) or isinstance(it, (list, tuple)):
        return it
    return list(it)
