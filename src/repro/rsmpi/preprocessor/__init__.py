"""The RSMPI preprocessor: DSL text in, ready-to-use operator out.

Usage::

    from repro.rsmpi import compile_operator

    sorted_op = compile_operator('''
        rsmpi operator sorted {
          non-commutative
          state { int first, last; int status; }
          void ident(state s) { s->first = INT_MAX; s->last = INT_MIN;
                                s->status = 1; }
          void pre_accum(state s, int i) { s->first = i; }
          void accum(state s, int i) { if (s->last > i) s->status = 0;
                                       s->last = i; }
          void combine(state s1, state s2) {
            s1->status &= s2->status && (s1->last <= s2->first);
            s1->last = s2->last;
          }
          int generate(state s) { return s->status; }
        }
    ''')

(which is paper Listing 8 verbatim modulo whitespace), after which
``sorted_op`` plugs into :func:`repro.rsmpi.RSMPI_Reduceall` and friends.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import DslSemanticError
from repro.rsmpi.operator_spec import OperatorSpec
from repro.rsmpi.preprocessor.ast_nodes import FuncDecl, OperatorDecl
from repro.rsmpi.preprocessor.codegen import (
    C_CONSTANTS,
    CompiledOperator,
    generate_python,
    _const_eval,
    _ZERO,
)
from repro.rsmpi.preprocessor.lexer import tokenize
from repro.rsmpi.preprocessor.parser import parse_operator

__all__ = [
    "compile_operator",
    "compile_operator_spec",
    "parse_operator",
    "tokenize",
    "generate_python",
    "CompiledOperator",
    "C_CONSTANTS",
]

#: Function names the spec understands, and their (min, max) arity.
_ROLES: dict[str, tuple[int, int]] = {
    "ident": (1, 1),
    "pre_accum": (2, 99),
    "accum": (2, 99),
    "post_accum": (2, 99),
    "combine": (2, 2),
    "generate": (1, 1),
    "red_generate": (1, 1),
    "scan_generate": (2, 99),
}


def _check_signature(fn: FuncDecl) -> None:
    lo, hi = _ROLES[fn.name]
    n = len(fn.params)
    if not lo <= n <= hi:
        raise DslSemanticError(
            f"function {fn.name!r} takes {n} parameters; expected "
            f"{lo}" + ("" if lo == hi else f"..{hi}")
        )
    if fn.params[0].ctype != "state":
        raise DslSemanticError(
            f"function {fn.name!r}: first parameter must be 'state'"
        )
    if fn.name == "combine" and fn.params[1].ctype != "state":
        raise DslSemanticError(
            "function 'combine': both parameters must be 'state'"
        )


def compile_operator_spec(
    src: str, params: Mapping[str, Any] | None = None
) -> OperatorSpec:
    """Parse + compile DSL source into an :class:`OperatorSpec`."""
    decl: OperatorDecl = parse_operator(src)
    compiled = generate_python(decl, params)

    # State defaults (C doesn't zero-init, but a defined baseline makes
    # ident functions that set only some fields well-behaved).
    defaults: dict[str, Any] = {}
    field_types: dict[str, str] = {}
    for f in decl.state_fields:
        if f.array_size is None:
            field_types[f.name] = f.ctype
        if f.array_size is not None:
            size = _const_eval(f.array_size, compiled.params)
            if not isinstance(size, int) or size < 1:
                raise DslSemanticError(
                    f"state field {f.name!r}: array size must be a positive "
                    f"integer constant, got {size!r}"
                )
            defaults[f.name] = [_ZERO[f.ctype]] * size
        else:
            defaults[f.name] = _ZERO[f.ctype]
    if not defaults:
        raise DslSemanticError(
            f"operator {decl.name!r}: missing state block"
        )

    spec = OperatorSpec(
        decl.name,
        commutative=decl.commutative,
        state=defaults,
        state_types=field_types,
    )
    for fname, fdecl in decl.functions.items():
        if fname not in _ROLES:
            continue  # helper function: callable from the others, no role
        _check_signature(fdecl)
        getattr(spec, fname)(compiled.namespace[fname])
    return spec


def compile_operator(src: str, params: Mapping[str, Any] | None = None):
    """Parse + compile DSL source into a ready
    :class:`~repro.core.operator.ReduceScanOp` (the one-call entry
    point — the paper's "preprocessor" as a function)."""
    return compile_operator_spec(src, params).build()
