"""Recursive-descent parser for the RSMPI operator DSL.

Grammar (paper Listing 8 plus small conveniences)::

    operator    : "rsmpi" "operator" IDENT "{" item* "}"
    item        : "commutative" | "non-commutative"
                | "param" type IDENT ("=" expr)? ";"
                | "state" "{" fielddecl* "}"
                | funcdef
    fielddecl   : type declarator ("," declarator)* ";"
    declarator  : IDENT ("[" expr "]")?
    funcdef     : rettype IDENT "(" params? ")" block
    rettype     : type | "void" | "state"
    param       : ("state" | type) IDENT ("[" "]")?

Statements and expressions are a C subset: declarations, assignment and
compound assignment, ``if``/``else``, C-style ``for``, ``while``,
``return``, ``break``, ``continue`` (in ``while`` loops), blocks; the
ternary operator, short-circuit ``&&``/``||``,
bitwise/relational/additive/multiplicative operators, unary ``!``/``-``/
``~``, postfix indexing, ``->`` and ``.`` field access, and
``++``/``--`` (statement and for-update positions only).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DslSyntaxError
from repro.rsmpi.preprocessor import ast_nodes as A
from repro.rsmpi.preprocessor.lexer import Token, tokenize

__all__ = ["parse_operator"]

_TYPES = {"int", "long", "float", "double", "bool"}
_AUG_OPS = {
    "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
    "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.toks = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.toks[min(self.pos + ahead, len(self.toks) - 1)]

    def next(self) -> Token:
        tok = self.toks[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def error(self, msg: str, tok: Token | None = None) -> DslSyntaxError:
        tok = tok or self.peek()
        got = tok.text or "<eof>"
        return DslSyntaxError(f"{msg} (got {got!r})", tok.line, tok.col)

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise self.error(f"expected {text!r}", tok)
        return tok

    def expect_ident(self) -> str:
        tok = self.next()
        if tok.kind != "ident":
            raise self.error("expected an identifier", tok)
        return tok.text

    def at(self, text: str) -> bool:
        return self.peek().text == text

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.next()
            return True
        return False

    # -- top level ------------------------------------------------------------

    def parse(self) -> A.OperatorDecl:
        self.expect("rsmpi")
        self.expect("operator")
        name = self.expect_ident()
        decl = A.OperatorDecl(name=name)
        self.expect("{")
        saw_flag = False
        while not self.at("}"):
            tok = self.peek()
            if tok.text in ("commutative", "non-commutative"):
                if saw_flag:
                    raise self.error("duplicate commutativity flag", tok)
                saw_flag = True
                decl.commutative = tok.text == "commutative"
                self.next()
            elif tok.text == "param":
                decl.params.append(self.parse_param_decl())
            elif tok.text == "state":
                if decl.state_fields:
                    raise self.error("duplicate state block", tok)
                decl.state_fields = self.parse_state_block()
            elif tok.text in _TYPES or tok.text in ("void", "state"):
                fn = self.parse_function()
                if fn.name in decl.functions:
                    raise self.error(f"duplicate function {fn.name!r}", tok)
                decl.functions[fn.name] = fn
            else:
                raise self.error(
                    "expected a commutativity flag, 'param', 'state' or a "
                    "function definition",
                    tok,
                )
        self.expect("}")
        if self.peek().kind != "eof":
            raise self.error("trailing input after operator block")
        return decl

    def parse_param_decl(self) -> A.ParamDecl:
        self.expect("param")
        ctype = self.next().text
        if ctype not in _TYPES:
            raise self.error(f"bad param type {ctype!r}")
        name = self.expect_ident()
        default = None
        if self.accept("="):
            default = self.parse_expr()
        self.expect(";")
        return A.ParamDecl(ctype, name, default)

    def parse_state_block(self) -> list[A.FieldDecl]:
        self.expect("state")
        self.expect("{")
        fields: list[A.FieldDecl] = []
        while not self.at("}"):
            ctype = self.next().text
            if ctype not in _TYPES:
                raise self.error(f"bad state field type {ctype!r}")
            while True:
                name = self.expect_ident()
                size = None
                if self.accept("["):
                    size = self.parse_expr()
                    self.expect("]")
                fields.append(A.FieldDecl(ctype, name, size))
                if not self.accept(","):
                    break
            self.expect(";")
        self.expect("}")
        return fields

    def parse_function(self) -> A.FuncDecl:
        rettype = self.next().text
        name = self.expect_ident()
        self.expect("(")
        params: list[A.ParamVar] = []
        if not self.at(")"):
            while True:
                ptok = self.next()
                ptype = ptok.text
                if ptype != "state" and ptype not in _TYPES:
                    raise self.error(f"bad parameter type {ptype!r}", ptok)
                pname = self.expect_ident()
                is_array = False
                if self.accept("["):
                    self.expect("]")
                    is_array = True
                params.append(A.ParamVar(ptype, pname, is_array))
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.parse_block()
        return A.FuncDecl(rettype, name, tuple(params), body)

    # -- statements ----------------------------------------------------------------

    def parse_block(self) -> A.Block:
        self.expect("{")
        stmts: list[A.Stmt] = []
        while not self.at("}"):
            stmts.append(self.parse_stmt())
        self.expect("}")
        return A.Block(tuple(stmts))

    def parse_stmt(self) -> A.Stmt:
        tok = self.peek()
        if tok.text == "{":
            return self.parse_block()
        if tok.text == ";":
            self.next()
            return A.Block(())
        if tok.text in _TYPES:
            return self.parse_var_decl()
        if tok.text == "if":
            return self.parse_if()
        if tok.text == "for":
            return self.parse_for()
        if tok.text == "while":
            return self.parse_while()
        if tok.text == "return":
            self.next()
            value = None if self.at(";") else self.parse_expr()
            self.expect(";")
            return A.Return(value)
        if tok.text == "break":
            self.next()
            self.expect(";")
            return A.Break()
        if tok.text == "continue":
            self.next()
            self.expect(";")
            return A.Continue()
        expr = self.parse_expr()
        self.expect(";")
        return A.ExprStmt(expr)

    def parse_var_decl(self) -> A.VarDecl:
        ctype = self.next().text
        entries: list[tuple[str, Optional[A.Expr], Optional[A.Expr]]] = []
        while True:
            name = self.expect_ident()
            size = None
            init = None
            if self.accept("["):
                size = self.parse_expr()
                self.expect("]")
            if self.accept("="):
                init = self.parse_expr()
            entries.append((name, size, init))
            if not self.accept(","):
                break
        self.expect(";")
        return A.VarDecl(ctype, tuple(entries))

    def parse_if(self) -> A.If:
        self.expect("if")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        then = self.parse_stmt()
        other = self.parse_stmt() if self.accept("else") else None
        return A.If(cond, then, other)

    def parse_for(self) -> A.For:
        self.expect("for")
        self.expect("(")
        init: Optional[A.Stmt] = None
        if not self.accept(";"):
            if self.peek().text in _TYPES:
                init = self.parse_var_decl()  # consumes ';'
            else:
                init = A.ExprStmt(self.parse_expr())
                self.expect(";")
        cond = None if self.at(";") else self.parse_expr()
        self.expect(";")
        update = None if self.at(")") else self.parse_expr()
        self.expect(")")
        body = self.parse_stmt()
        return A.For(init, cond, update, body)

    def parse_while(self) -> A.While:
        self.expect("while")
        self.expect("(")
        cond = self.parse_expr()
        self.expect(")")
        return A.While(cond, self.parse_stmt())

    # -- expressions (precedence climbing) --------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> A.Expr:
        left = self.parse_ternary()
        tok = self.peek()
        if tok.text == "=":
            self._check_lvalue(left, tok)
            self.next()
            return A.Assign(left, self.parse_assignment())
        if tok.text in _AUG_OPS:
            self._check_lvalue(left, tok)
            self.next()
            return A.AugAssign(_AUG_OPS[tok.text], left, self.parse_assignment())
        return left

    def _check_lvalue(self, e: A.Expr, tok: Token) -> None:
        if not isinstance(e, (A.Name, A.Index, A.Field)):
            raise self.error("invalid assignment target", tok)

    def parse_ternary(self) -> A.Expr:
        cond = self.parse_binary(0)
        if self.accept("?"):
            then = self.parse_expr()
            self.expect(":")
            other = self.parse_ternary()
            return A.Ternary(cond, then, other)
        return cond

    _LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def parse_binary(self, level: int) -> A.Expr:
        if level >= len(self._LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        while self.peek().text in self._LEVELS[level]:
            op = self.next().text
            right = self.parse_binary(level + 1)
            left = A.Binary(op, left, right)
        return left

    def parse_unary(self) -> A.Expr:
        tok = self.peek()
        if tok.text in ("!", "-", "+", "~"):
            self.next()
            return A.Unary(tok.text, self.parse_unary())
        if tok.text in ("++", "--"):
            self.next()
            target = self.parse_unary()
            self._check_lvalue(target, tok)
            return A.IncDec(tok.text, target, prefix=True)
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.text == "[":
                self.next()
                idx = self.parse_expr()
                self.expect("]")
                expr = A.Index(expr, idx)
            elif tok.text in ("->", "."):
                self.next()
                expr = A.Field(expr, self.expect_ident())
            elif tok.text in ("++", "--"):
                self.next()
                self._check_lvalue(expr, tok)
                expr = A.IncDec(tok.text, expr, prefix=False)
            elif tok.text == "(" and isinstance(expr, A.Name):
                self.next()
                args: list[A.Expr] = []
                if not self.at(")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept(","):
                            break
                self.expect(")")
                expr = A.Call(expr.ident, tuple(args))
            else:
                return expr

    def parse_primary(self) -> A.Expr:
        tok = self.next()
        if tok.kind == "number":
            text = tok.text
            if any(c in text for c in ".eE"):
                return A.Num(float(text))
            return A.Num(int(text))
        if tok.text in ("true", "false"):
            return A.BoolLit(tok.text == "true")
        if tok.kind == "ident":
            return A.Name(tok.text)
        if tok.text == "(":
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise self.error("expected an expression", tok)


def parse_operator(src: str) -> A.OperatorDecl:
    """Parse one ``rsmpi operator`` block; raises DslSyntaxError."""
    return _Parser(tokenize(src)).parse()
