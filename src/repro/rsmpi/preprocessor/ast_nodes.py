"""AST for the RSMPI operator DSL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "OperatorDecl",
    "ParamDecl",
    "FieldDecl",
    "FuncDecl",
    "ParamVar",
    # statements
    "Stmt",
    "Block",
    "VarDecl",
    "ExprStmt",
    "If",
    "For",
    "While",
    "Return",
    "Break",
    "Continue",
    # expressions
    "Expr",
    "Num",
    "BoolLit",
    "Name",
    "Unary",
    "Binary",
    "Assign",
    "AugAssign",
    "Ternary",
    "Index",
    "Field",
    "Call",
    "IncDec",
]


# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Num(Expr):
    value: int | float


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class Name(Expr):
    ident: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # "!", "-", "+", "~"
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass(frozen=True)
class Assign(Expr):
    target: Expr  # Name | Index | Field
    value: Expr


@dataclass(frozen=True)
class AugAssign(Expr):
    op: str  # "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"
    target: Expr
    value: Expr


@dataclass(frozen=True)
class Index(Expr):
    base: Expr
    index: Expr


@dataclass(frozen=True)
class Field(Expr):
    base: Expr
    name: str  # via "->" or "."


@dataclass(frozen=True)
class Call(Expr):
    func: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class IncDec(Expr):
    op: str  # "++" or "--"
    target: Expr
    prefix: bool


# -- statements --------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    pass


@dataclass(frozen=True)
class Block(Stmt):
    stmts: tuple[Stmt, ...]


@dataclass(frozen=True)
class VarDecl(Stmt):
    ctype: str
    names: tuple[tuple[str, Optional[Expr], Optional[Expr]], ...]
    # each entry: (name, array-size or None, initializer or None)


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt]


@dataclass(frozen=True)
class For(Stmt):
    init: Optional[Stmt]  # VarDecl or ExprStmt
    cond: Optional[Expr]
    update: Optional[Expr]
    body: Stmt


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr]


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


# -- declarations -------------------------------------------------------------


@dataclass(frozen=True)
class ParamDecl:
    """``param int k = 10;`` — a compile-time constant, overridable at
    compile_operator() time (our analogue of Chapel's ``const k``)."""

    ctype: str
    name: str
    default: Optional[Expr]


@dataclass(frozen=True)
class FieldDecl:
    """One state field: ``int v[10];`` has array_size; scalars don't."""

    ctype: str
    name: str
    array_size: Optional[Expr]


@dataclass(frozen=True)
class ParamVar:
    """A function parameter: ``state s`` or ``int i`` or ``int a[]``."""

    ctype: str  # "state" or a scalar type
    name: str
    is_array: bool = False


@dataclass(frozen=True)
class FuncDecl:
    rettype: str
    name: str
    params: tuple[ParamVar, ...]
    body: Block


@dataclass
class OperatorDecl:
    name: str
    commutative: bool = True
    params: list[ParamDecl] = field(default_factory=list)
    state_fields: list[FieldDecl] = field(default_factory=list)
    functions: dict[str, FuncDecl] = field(default_factory=dict)
