"""Code generation: RSMPI DSL AST -> Python functions -> OperatorSpec.

This plays the role of the paper's Perl preprocessor ("superficial
changes made by a preprocessor translate this code into a set of
functions that can then be used at the call-site"), except the target is
Python rather than C+MPI: each DSL function becomes a compiled Python
function over :class:`~repro.rsmpi.operator_spec.StateRecord` states,
and the whole operator becomes a ready-to-use
:class:`~repro.core.operator.ReduceScanOp`.

C semantics preserved where they differ from Python's:

* ``/`` and ``%`` on integers truncate toward zero / take the dividend's
  sign (``_c_div``/``_c_mod`` helpers);
* ``&&``/``||``/``!`` short-circuit and yield 0/1;
* comparisons yield bools, which are ints in Python — compatible with
  expressions like ``s1->status &= s2->status && (...)`` from Listing 8.

Assignments and ``++``/``--`` are statements (or for-update clauses)
only; using them as sub-expressions is a compile-time error rather than
a silent mis-compile.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from repro.errors import DslSemanticError
from repro.rsmpi.preprocessor import ast_nodes as A

__all__ = ["generate_python", "CompiledOperator", "C_CONSTANTS"]

C_CONSTANTS: dict[str, Any] = {
    "INT_MAX": 2**31 - 1,
    "INT_MIN": -(2**31),
    "LONG_MAX": 2**63 - 1,
    "LONG_MIN": -(2**63),
    "DBL_MAX": 1.7976931348623157e308,
    "DBL_MIN": -1.7976931348623157e308,  # DSL convention: most-negative
    "FLT_MAX": 3.4028234663852886e38,
    "FLT_MIN": -3.4028234663852886e38,
}

_ZERO = {"int": 0, "long": 0, "float": 0.0, "double": 0.0, "bool": 0}

_KNOWN_FUNCS = {"abs": abs, "min": min, "max": max, "floor": math.floor,
                "ceil": math.ceil, "sqrt": math.sqrt, "fabs": abs}


def _c_div(a, b):
    """C division: truncates toward zero for two integers."""
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q
    return a / b


def _c_mod(a, b):
    """C remainder: takes the sign of the dividend for integers."""
    if isinstance(a, int) and isinstance(b, int):
        return a - _c_div(a, b) * b
    return math.fmod(a, b)


class _Scope:
    """Tracks which bare names are legal in the current function."""

    def __init__(self, names: set[str]):
        self.names = set(names)

    def declare(self, name: str) -> None:
        self.names.add(name)

    def check(self, name: str) -> None:
        if name not in self.names:
            raise DslSemanticError(
                f"unknown name {name!r}; declare it as a local, parameter, "
                "param constant, or use a known constant "
                "(INT_MAX, DBL_MAX, ...)"
            )


class _FuncGen:
    """Generates the Python source of one DSL function."""

    def __init__(self, decl: A.FuncDecl, global_names: set[str]):
        self.decl = decl
        self.lines: list[str] = []
        self.scope = _Scope(global_names | {p.name for p in decl.params})
        self._loops: list[str] = []  # "for" | "while" nesting

    def emit(self, line: str, indent: int) -> None:
        self.lines.append("    " * indent + line)

    def generate(self) -> str:
        params = ", ".join(p.name for p in self.decl.params)
        self.emit(f"def {self.decl.name}({params}):", 0)
        body_start = len(self.lines)
        self.stmt_block(self.decl.body, 1)
        if len(self.lines) == body_start:
            self.emit("pass", 1)
        return "\n".join(self.lines)

    # -- statements ------------------------------------------------------------

    def stmt_block(self, block: A.Block, indent: int) -> None:
        for s in block.stmts:
            self.stmt(s, indent)

    def stmt(self, s: A.Stmt, indent: int) -> None:
        if isinstance(s, A.Block):
            if not s.stmts:
                self.emit("pass", indent)
            else:
                self.stmt_block(s, indent)
        elif isinstance(s, A.VarDecl):
            for name, size, init in s.names:
                self.scope.declare(name)
                if size is not None:
                    zero = _ZERO[s.ctype]
                    self.emit(
                        f"{name} = [{zero!r}] * ({self.expr(size)})", indent
                    )
                    if init is not None:
                        raise DslSemanticError(
                            f"array {name!r}: initializers on array "
                            "declarations are not supported"
                        )
                elif init is not None:
                    self.emit(f"{name} = {self.expr(init)}", indent)
                else:
                    self.emit(f"{name} = {_ZERO[s.ctype]!r}", indent)
        elif isinstance(s, A.ExprStmt):
            self.expr_stmt(s.expr, indent)
        elif isinstance(s, A.If):
            self.emit(f"if {self.expr(s.cond)}:", indent)
            self.stmt_or_pass(s.then, indent + 1)
            if s.other is not None:
                self.emit("else:", indent)
                self.stmt_or_pass(s.other, indent + 1)
        elif isinstance(s, A.While):
            self.emit(f"while {self.expr(s.cond)}:", indent)
            self._loops.append("while")
            self.stmt_or_pass(s.body, indent + 1)
            self._loops.pop()
        elif isinstance(s, A.For):
            if s.init is not None:
                self.stmt(s.init, indent)
            cond = self.expr(s.cond) if s.cond is not None else "True"
            self.emit(f"while {cond}:", indent)
            self._loops.append("for")
            self.stmt_or_pass(s.body, indent + 1)
            self._loops.pop()
            if s.update is not None:
                self.expr_stmt(s.update, indent + 1)
        elif isinstance(s, A.Break):
            if not self._loops:
                raise DslSemanticError("'break' outside a loop")
            self.emit("break", indent)
        elif isinstance(s, A.Continue):
            if not self._loops:
                raise DslSemanticError("'continue' outside a loop")
            if self._loops[-1] == "for":
                raise DslSemanticError(
                    "'continue' inside a C-style 'for' is not supported "
                    "(the loop update would be skipped); rewrite as a "
                    "'while' loop"
                )
            self.emit("continue", indent)
        elif isinstance(s, A.Return):
            if s.value is None:
                self.emit("return", indent)
            else:
                self.emit(f"return {self.expr(s.value)}", indent)
        else:  # pragma: no cover - parser produces no other nodes
            raise DslSemanticError(f"unsupported statement {type(s).__name__}")

    def stmt_or_pass(self, s: A.Stmt, indent: int) -> None:
        before = len(self.lines)
        self.stmt(s, indent)
        if len(self.lines) == before:
            self.emit("pass", indent)

    def expr_stmt(self, e: A.Expr, indent: int) -> None:
        """Assignments / increments are legal here; plain calls too."""
        if isinstance(e, A.Assign):
            # flatten a = b = c
            targets = [e.target]
            value = e.value
            while isinstance(value, A.Assign):
                targets.append(value.target)
                value = value.value
            rhs = self.expr(value)
            lhs = " = ".join(self.lvalue(t) for t in targets)
            self.emit(f"{lhs} = {rhs}", indent)
        elif isinstance(e, A.AugAssign):
            self.emit(
                f"{self.lvalue(e.target)} = "
                f"{self._binary(e.op, self.lvalue(e.target), self.expr(e.value))}",
                indent,
            )
        elif isinstance(e, A.IncDec):
            delta = "+ 1" if e.op == "++" else "- 1"
            self.emit(
                f"{self.lvalue(e.target)} = {self.lvalue(e.target)} {delta}",
                indent,
            )
        elif isinstance(e, A.Call):
            self.emit(self.expr(e), indent)
        else:
            # e.g. a bare `x;` — harmless, still check names
            self.emit(f"{self.expr(e)}", indent)

    # -- expressions -----------------------------------------------------------

    def lvalue(self, e: A.Expr) -> str:
        if isinstance(e, A.Name):
            self.scope.check(e.ident)
            return e.ident
        if isinstance(e, A.Index):
            return f"{self.expr(e.base)}[{self.expr(e.index)}]"
        if isinstance(e, A.Field):
            return f"{self.expr(e.base)}.{e.name}"
        raise DslSemanticError(
            f"invalid assignment target {type(e).__name__}"
        )  # pragma: no cover - parser already rejects

    def _binary(self, op: str, left: str, right: str) -> str:
        if op == "/":
            return f"_c_div({left}, {right})"
        if op == "%":
            return f"_c_mod({left}, {right})"
        return f"({left} {op} {right})"

    def expr(self, e: A.Expr) -> str:
        if isinstance(e, A.Num):
            return repr(e.value)
        if isinstance(e, A.BoolLit):
            return "1" if e.value else "0"
        if isinstance(e, A.Name):
            self.scope.check(e.ident)
            return e.ident
        if isinstance(e, A.Unary):
            inner = self.expr(e.operand)
            if e.op == "!":
                return f"(0 if {inner} else 1)"
            return f"({e.op}{inner})"
        if isinstance(e, A.Binary):
            if e.op == "&&":
                return f"(1 if ({self.expr(e.left)}) and ({self.expr(e.right)}) else 0)"
            if e.op == "||":
                return f"(1 if ({self.expr(e.left)}) or ({self.expr(e.right)}) else 0)"
            return self._binary(e.op, self.expr(e.left), self.expr(e.right))
        if isinstance(e, A.Ternary):
            return (
                f"(({self.expr(e.then)}) if ({self.expr(e.cond)}) "
                f"else ({self.expr(e.other)}))"
            )
        if isinstance(e, A.Index):
            return f"{self.expr(e.base)}[{self.expr(e.index)}]"
        if isinstance(e, A.Field):
            return f"{self.expr(e.base)}.{e.name}"
        if isinstance(e, A.Call):
            self.scope.check(e.func)
            args = ", ".join(self.expr(a) for a in e.args)
            return f"{e.func}({args})"
        if isinstance(e, (A.Assign, A.AugAssign, A.IncDec)):
            raise DslSemanticError(
                "assignments and ++/-- are statements in this DSL; "
                "they cannot be used inside expressions"
            )
        raise DslSemanticError(  # pragma: no cover
            f"unsupported expression {type(e).__name__}"
        )


class CompiledOperator:
    """The output of the preprocessor: generated source + namespace."""

    def __init__(
        self,
        decl: A.OperatorDecl,
        source: str,
        namespace: dict[str, Any],
        params: dict[str, Any],
    ):
        self.decl = decl
        self.source = source
        self.namespace = namespace
        self.params = params

    @property
    def name(self) -> str:
        return self.decl.name


def _const_eval(e: A.Expr, env: Mapping[str, Any]) -> Any:
    """Evaluate a compile-time-constant expression (param defaults,
    state array sizes)."""
    if isinstance(e, A.Num):
        return e.value
    if isinstance(e, A.BoolLit):
        return 1 if e.value else 0
    if isinstance(e, A.Name):
        if e.ident in env:
            return env[e.ident]
        raise DslSemanticError(
            f"constant expression references unknown name {e.ident!r}"
        )
    if isinstance(e, A.Unary):
        v = _const_eval(e.operand, env)
        return {"-": lambda: -v, "+": lambda: v, "!": lambda: 0 if v else 1,
                "~": lambda: ~v}[e.op]()
    if isinstance(e, A.Binary):
        a, b = _const_eval(e.left, env), _const_eval(e.right, env)
        if e.op == "/":
            return _c_div(a, b)
        if e.op == "%":
            return _c_mod(a, b)
        if e.op == "&&":
            return 1 if (a and b) else 0
        if e.op == "||":
            return 1 if (a or b) else 0
        return eval(f"a {e.op} b", {}, {"a": a, "b": b})  # noqa: S307 - fixed op set
    raise DslSemanticError(
        f"unsupported constant expression {type(e).__name__}"
    )


def generate_python(
    decl: A.OperatorDecl, params: Mapping[str, Any] | None = None
) -> CompiledOperator:
    """Compile a parsed operator declaration to Python functions.

    ``params`` overrides the declaration's ``param`` constants (like
    instantiating Chapel's ``mink(integer, 10)`` with a concrete k).
    """
    # Resolve param constants.
    env: dict[str, Any] = dict(C_CONSTANTS)
    overrides = dict(params or {})
    for p in decl.params:
        if p.name in overrides:
            env[p.name] = overrides.pop(p.name)
        elif p.default is not None:
            env[p.name] = _const_eval(p.default, env)
        else:
            raise DslSemanticError(
                f"param {p.name!r} has no default; pass a value via "
                "compile_operator(..., params={...})"
            )
    if overrides:
        raise DslSemanticError(
            f"unknown params passed: {sorted(overrides)}; declared params: "
            f"{[p.name for p in decl.params]}"
        )

    global_names = (
        set(env) | set(_KNOWN_FUNCS) | set(decl.functions)
    )
    sources = []
    for fn in decl.functions.values():
        sources.append(_FuncGen(fn, global_names).generate())
    source = "\n\n".join(sources)

    namespace: dict[str, Any] = dict(env)
    namespace.update(_KNOWN_FUNCS)
    namespace["_c_div"] = _c_div
    namespace["_c_mod"] = _c_mod
    exec(  # noqa: S102 - executing our own generated code
        compile(source, f"<rsmpi:{decl.name}>", "exec"), namespace
    )
    return CompiledOperator(decl, source, namespace, dict(env))
