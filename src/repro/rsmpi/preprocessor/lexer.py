"""Tokenizer for the RSMPI operator DSL (the C-like language of paper
Listing 8).

The token stream carries line/column positions so parse errors point at
the offending source.  Comments (``//`` and ``/* */``) are skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import DslSyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "rsmpi",
        "operator",
        "state",
        "commutative",
        "non-commutative",
        "param",
        "void",
        "int",
        "long",
        "float",
        "double",
        "bool",
        "if",
        "else",
        "for",
        "while",
        "return",
        "break",
        "continue",
        "true",
        "false",
    }
)

# Longest-match-first punctuation.
_PUNCT = [
    "<<=", ">>=",
    "->", "++", "--", "&&", "||", "<<", ">>",
    "<=", ">=", "==", "!=",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "{", "}", "(", ")", "[", "]", ";", ",",
    "<", ">", "=", "+", "-", "*", "/", "%",
    "&", "|", "^", "!", "~", "?", ":", ".",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "ident" | "keyword" | "number" | "punct" | "eof"
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(src: str) -> list[Token]:
    """Tokenize DSL source; raises DslSyntaxError on illegal characters."""
    tokens: list[Token] = []
    i, line, col = 0, 1, 1
    n = len(src)

    def bump(text: str) -> None:
        nonlocal line, col
        for ch in text:
            if ch == "\n":
                line += 1
                col = 1
            else:
                col += 1

    while i < n:
        ch = src[i]
        # whitespace
        if ch in " \t\r\n":
            bump(ch)
            i += 1
            continue
        # comments
        if src.startswith("//", i):
            j = src.find("\n", i)
            j = n if j < 0 else j
            bump(src[i:j])
            i = j
            continue
        if src.startswith("/*", i):
            j = src.find("*/", i + 2)
            if j < 0:
                raise DslSyntaxError("unterminated /* comment", line, col)
            bump(src[i : j + 2])
            i = j + 2
            continue
        # identifiers / keywords (allow the hyphen of "non-commutative")
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            word = src[i:j]
            # special case: "non-commutative" is one keyword
            if word == "non" and src.startswith("-commutative", j):
                word = "non-commutative"
                j += len("-commutative")
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, col))
            bump(src[i:j])
            i = j
            continue
        # numbers (ints and simple floats, with exponents)
        if ch.isdigit() or (ch == "." and i + 1 < n and src[i + 1].isdigit()):
            j = i
            seen_dot = seen_exp = False
            while j < n:
                c = src[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and src[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token("number", src[i:j], line, col))
            bump(src[i:j])
            i = j
            continue
        # punctuation
        for p in _PUNCT:
            if src.startswith(p, i):
                tokens.append(Token("punct", p, line, col))
                bump(p)
                i += len(p)
                break
        else:
            raise DslSyntaxError(f"illegal character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
