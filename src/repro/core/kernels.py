"""Kernel-compilation tier for the accumulate phase.

The paper's accumulate phase is a local fold over the rank's block —
"should be optimized at the combine function's expense" (§3).  This
module lowers an operator's ``pre_accum``/``accum`` (and ``scan_gen``
for scans) into single-pass NumPy kernels over whole input blocks, the
CPU mirror of Jradi et al.'s generic GPU scan kernels (arXiv
1710.07358): one vectorized sweep instead of one interpreter dispatch
per element.

Three kernel classes cover the ~31 built-in operators:

* :class:`ElementwiseKernel` — the operator is a pure binary ufunc with
  default pre/post hooks (``UfuncOp`` and subclasses).  Accumulate is
  ``ufunc.reduce`` over the block, scan is ``ufunc.accumulate`` —
  numerically *identical* to the operator's own block methods.
* :class:`SegmentedKernel` — the operator ships its own multi-pass
  vectorized block methods (counts' ``bincount``, mink's ``partition``,
  segmented's head-location pass, ...).  The kernel delegates to them;
  classification exists so the cache, metrics, and batching tiers can
  reason about the op uniformly.
* :class:`FallbackKernel` — everything else (stateful per-element
  operators like ``TranslateMinKOp``).  Runs the base-class scalar
  loop, unchanged.

**Identity-oracle guarantee.**  Every kernel path produces results
byte-identical to the path the operator took before this tier existed:
elementwise kernels execute the *same* ufunc expressions as
``UfuncOp.accum_block``/``scan_block``, segmented/fallback kernels call
the operator's own methods.  Faster routings that could change
numerics are gated on provable exactness:

* ``loop_exact`` — the per-element scalar loop is bit-identical to the
  vectorized block path.  True exactly when the ufunc is exactly
  associative on the data's dtype: ``min``/``max``/``logical_*``/
  ``bitwise_*`` on any dtype, ``add``/``multiply`` on bool/int dtypes
  (modular arithmetic), never ``add``/``multiply`` on floats (NumPy's
  pairwise reduction orders differently than a sequential fold).  Only
  loop-exact kernels may be routed to the scalar path by the ``kernel``
  tuning decision — the decision can change speed, never results.
* ``tile_exact`` — threading the state through cache-sized tiles is
  bit-identical to one whole-block pass.  Same ufunc/dtype rule for
  elementwise kernels; trivially true for the fallback loop; assumed
  false for custom segmented block methods (e.g. ``MeanVarOp``'s
  Chan-style combine is order-sensitive in the last bits).  Only a
  batch whose kernels are *all* tile-exact takes the shared single
  sweep in :func:`batched_accumulate`.

**Numba opt-in.**  When numba is importable and enabled
(``configure(numba=True)`` or ``REPRO_NUMBA=1``), loop-exact
elementwise kernels get an ``@njit`` specialization.  The jitted fold
is verified bit-for-bit against the pure-NumPy oracle on a probe block
at build time and discarded on any mismatch — the NumPy path remains
the identity oracle.

The process-wide :class:`KernelCache` memoizes compiled kernels by
``(operator signature, dtype, shape class)``.  Like the PR 5
``ScheduleCache`` it is generation-invalidated: :func:`configure`
bumps :func:`cache_generation`, and a cache whose stored generation is
stale flushes itself on next use.  Hit/miss counts surface through
``stats()`` into engine telemetry, ``repro top`` and Prometheus.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.operator import ReduceScanOp

__all__ = [
    "Kernel",
    "ElementwiseKernel",
    "SegmentedKernel",
    "FallbackKernel",
    "KernelCache",
    "compile_kernel",
    "default_cache",
    "configure",
    "kernels_enabled",
    "numba_available",
    "numba_enabled",
    "numba_requested",
    "cache_generation",
    "batched_accumulate",
]


# --------------------------------------------------------------------------
# Configuration: process-wide enable switches with a generation counter.

_lock = threading.Lock()
_enabled: bool = os.environ.get("REPRO_KERNELS", "1") != "0"
_numba_requested: bool | None = (
    True if os.environ.get("REPRO_NUMBA", "") not in ("", "0") else None
)
_generation: int = 0


def configure(*, enabled: bool | None = None, numba: bool | None = None) -> None:
    """Flip the kernel tier (``enabled=``) or the numba specialization
    (``numba=``) process-wide.  Any change bumps the cache generation,
    so every :class:`KernelCache` flushes and recompiles lazily."""
    global _enabled, _numba_requested, _generation
    with _lock:
        if enabled is not None:
            _enabled = bool(enabled)
        if numba is not None:
            _numba_requested = bool(numba)
        _generation += 1


def kernels_enabled() -> bool:
    """True when the kernel tier is active (default; ``REPRO_KERNELS=0``
    or ``configure(enabled=False)`` turns it off)."""
    return _enabled


def numba_available() -> bool:
    """True when numba is importable in this environment."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def numba_enabled() -> bool:
    """True when numba specialization is both requested (opt-in via
    ``configure(numba=True)`` or ``REPRO_NUMBA=1``) and importable."""
    return bool(_numba_requested) and numba_available()


def numba_requested() -> bool | None:
    """The raw numba opt-in flag: ``True``/``False`` after an explicit
    ``configure(numba=...)`` or ``REPRO_NUMBA=1``, ``None`` when unset.
    Unlike :func:`numba_enabled` this ignores importability — it is what
    another process must pass to :func:`configure` to mirror this one."""
    return _numba_requested


def cache_generation() -> int:
    """Monotonic configuration generation; bumped by :func:`configure`."""
    return _generation


# --------------------------------------------------------------------------
# Exactness rules (see module docstring).

#: Ufuncs whose fold is exactly associative on every supported dtype.
_EXACT_ANY_DTYPE = frozenset(
    {
        np.minimum,
        np.maximum,
        np.logical_and,
        np.logical_or,
        np.logical_xor,
        np.bitwise_and,
        np.bitwise_or,
        np.bitwise_xor,
    }
)

#: Ufuncs exactly associative only on exact (bool / integer) dtypes.
_EXACT_ON_INT_DTYPES = frozenset({np.add, np.multiply})


def _ufunc_exact(ufunc: np.ufunc, dtype_kind: str | None) -> bool:
    """Is folding ``ufunc`` over data of this dtype kind order-exact?

    ``dtype_kind`` is a NumPy dtype ``kind`` char, or ``None`` for
    plain Python sequences whose element type is unknown (then only the
    any-dtype ufuncs qualify)."""
    if ufunc in _EXACT_ANY_DTYPE:
        return True
    if ufunc in _EXACT_ON_INT_DTYPES:
        return dtype_kind in ("b", "i", "u")
    return False


# --------------------------------------------------------------------------
# Kernel classes.


class Kernel:
    """A compiled accumulate/scan strategy for one (operator, dtype,
    shape-class) combination.  Kernels hold no per-call state: the
    operator instance is passed to every call, so parameterized ops
    (``MinKOp(3)`` vs ``MinKOp(5)``) share one cache entry per class."""

    kind = "fallback"
    #: Scalar per-element loop is bit-identical to :meth:`accumulate`.
    loop_exact = False
    #: Threading state through tiles is bit-identical to one block pass.
    tile_exact = False

    def accumulate(self, op: ReduceScanOp, state: Any, values: Any) -> Any:
        """Fold a whole block into ``state`` (pre/post hooks excluded —
        the driver applies those, exactly as ``accumulate_local`` does)."""
        return op.accum_block(state, values)

    def scan(
        self, op: ReduceScanOp, state: Any, values: Any, *, exclusive: bool
    ) -> tuple[list[Any], Any]:
        """Second scan phase over a whole block: outputs plus final state."""
        return op.scan_block(state, values, exclusive=exclusive)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} kind={self.kind}>"


class FallbackKernel(Kernel):
    """Stateful per-element operator: run the base-class scalar loop.

    The block "path" *is* the loop, so the loop is trivially exact, and
    splitting the loop across tiles threads the identical state through
    the identical calls — tile-exact as well."""

    kind = "fallback"
    loop_exact = True
    tile_exact = True


class SegmentedKernel(Kernel):
    """Operator with custom multi-pass vectorized block methods.

    Delegates to the operator's own ``accum_block``/``scan_block``.
    Neither loop- nor tile-exact: custom block numerics (Chan-style
    mean/variance combines, partition-based top-k) need not match a
    sequential fold or a tiled re-association bit-for-bit."""

    kind = "segmented"
    loop_exact = False
    tile_exact = False


class ElementwiseKernel(Kernel):
    """Pure binary-ufunc operator: one ``ufunc.reduce`` sweep per block.

    Executes exactly the expressions of ``UfuncOp.accum_block`` /
    ``scan_block``, so results are byte-identical to the pre-kernel
    path by construction.  ``loop_exact``/``tile_exact`` are computed
    per dtype at compile time from the associativity rules above.  When
    numba is enabled, a jitted sequential fold replaces the reduce for
    loop-exact dtypes — after passing a bit-identity probe against the
    NumPy oracle."""

    kind = "elementwise"

    def __init__(self, ufunc: np.ufunc, dtype_kind: str | None):
        self.ufunc = ufunc
        self.dtype_kind = dtype_kind
        exact = _ufunc_exact(ufunc, dtype_kind)
        self.loop_exact = exact
        self.tile_exact = exact
        self._jit: Callable[[Any, np.ndarray], Any] | None = None
        if exact and dtype_kind is not None and numba_enabled():
            self._jit = _build_numba_fold(ufunc, dtype_kind)

    def accumulate(self, op: ReduceScanOp, state: Any, values: Any) -> Any:
        if len(values) == 0:
            return state
        arr = np.asarray(values)
        if self._jit is not None and arr.ndim == 1:
            try:
                return self._jit(state, arr)
            except Exception:
                # Unsupported state type for the jitted fold (e.g. an
                # object identity): permanently fall back to the oracle.
                self._jit = None
        return self.ufunc(state, self.ufunc.reduce(arr))

    def scan(
        self, op: ReduceScanOp, state: Any, values: Any, *, exclusive: bool
    ) -> tuple[list[Any], Any]:
        n = len(values)
        if n == 0:
            return [], state
        arr = np.asarray(values)
        inclusive = self.ufunc(state, self.ufunc.accumulate(arr))
        final = inclusive[-1]
        if exclusive:
            out = np.concatenate(([state], inclusive[:-1]))
            return list(out), final
        return list(inclusive), final


# --------------------------------------------------------------------------
# Numba specialization (optional, verified against the NumPy oracle).

#: Scalar bodies for the jitted fold, keyed by ufunc.  Plain operators
#: so numba's type inference sees native arithmetic.
_NUMBA_BODIES: dict[np.ufunc, Callable[[Any, Any], Any]] = {
    np.add: lambda a, b: a + b,
    np.multiply: lambda a, b: a * b,
    np.minimum: lambda a, b: a if a < b else b,
    np.maximum: lambda a, b: a if a > b else b,
    np.bitwise_and: lambda a, b: a & b,
    np.bitwise_or: lambda a, b: a | b,
    np.bitwise_xor: lambda a, b: a ^ b,
    np.logical_and: lambda a, b: bool(a) and bool(b),
    np.logical_or: lambda a, b: bool(a) or bool(b),
    np.logical_xor: lambda a, b: bool(a) != bool(b),
}


def _build_numba_fold(
    ufunc: np.ufunc, dtype_kind: str
) -> Callable[[Any, np.ndarray], Any] | None:
    """Build and *verify* an ``@njit`` sequential fold for ``ufunc``.

    Returns None when numba is unavailable, the ufunc has no scalar
    body, compilation fails, or — crucially — the jitted result is not
    bit-identical to the pure-NumPy oracle on a probe block.  The
    NumPy path always remains the identity oracle."""
    body = _NUMBA_BODIES.get(ufunc)
    if body is None:
        return None
    try:
        import numba
    except Exception:  # pragma: no cover - numba_enabled() gates this
        return None
    try:
        jit_body = numba.njit(cache=False)(body)

        @numba.njit(cache=False)
        def fold(state, arr):
            acc = state
            for i in range(arr.shape[0]):
                acc = jit_body(acc, arr[i])
            return acc

        # Bit-identity probe against the oracle on representative data.
        if dtype_kind == "b":
            probe = np.array([True, False, True, True, False])
            seed = True
        else:
            dtype = {"i": np.int64, "u": np.uint64, "f": np.float64}.get(
                dtype_kind, np.int64
            )
            probe = (np.arange(1, 65) % 7 + 1).astype(dtype)
            seed = probe.dtype.type(1)
        oracle = ufunc(seed, ufunc.reduce(probe))
        got = fold(seed, probe)
        if np.asarray(got).tobytes() != np.asarray(oracle).tobytes():
            return None
    except Exception:
        return None

    def call(state, arr):
        return fold(arr.dtype.type(state), arr)

    return call


# --------------------------------------------------------------------------
# The compiler.


def _classify_value(values: Any) -> tuple[str, str | None]:
    """Cache-key component: ``(shape class, dtype kind)``.

    NumPy arrays key by dtype string and a coarse rank class; plain
    Python sequences share one ``"pyseq"`` class (their element dtype
    is unknown without materializing them)."""
    if isinstance(values, np.ndarray):
        ndim = values.ndim if values.ndim < 2 else 2
        return (f"nd{ndim}:{values.dtype.str}", values.dtype.kind)
    return ("pyseq", None)


def compile_kernel(op: ReduceScanOp, values: Any) -> Kernel:
    """Pattern-match ``op`` into a kernel class for this value shape.

    * ``UfuncOp`` (and subclasses) with the stock block methods and
      default pre/post hooks → :class:`ElementwiseKernel`.
    * Any operator overriding ``accum_block`` or ``scan_block`` →
      :class:`SegmentedKernel` (its own vectorized multi-pass code).
    * Everything else → :class:`FallbackKernel` (base-class loop).
    """
    from repro.ops.arithmetic import UfuncOp

    cls = type(op)
    _, dtype_kind = _classify_value(values)
    if (
        isinstance(op, UfuncOp)
        and cls.accum_block is UfuncOp.accum_block
        and cls.scan_block is UfuncOp.scan_block
        and cls.pre_accum is ReduceScanOp.pre_accum
        and cls.post_accum is ReduceScanOp.post_accum
    ):
        return ElementwiseKernel(op._ufunc, dtype_kind)
    if (
        cls.accum_block is not ReduceScanOp.accum_block
        or cls.scan_block is not ReduceScanOp.scan_block
    ):
        return SegmentedKernel()
    return FallbackKernel()


# --------------------------------------------------------------------------
# The process-wide cache.


class KernelCache:
    """Compiled-kernel memo keyed by ``(operator signature, shape/dtype
    class)``, generation-invalidated like the PR 5 ``ScheduleCache``:
    when :func:`configure` bumps :func:`cache_generation`, the next
    lookup flushes every entry and recompiles lazily.  Hit/miss
    counters feed engine telemetry and the benchmark reports."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kernels: dict[tuple, Kernel] = {}
        self._generation = cache_generation()
        self.hits = 0
        self.misses = 0

    def get(self, op: ReduceScanOp, values: Any) -> Kernel:
        """The kernel for ``op`` over ``values``, compiling on miss."""
        key = (op.kernel_signature(), _classify_value(values)[0])
        gen = cache_generation()
        with self._lock:
            if gen != self._generation:
                self._kernels.clear()
                self._generation = gen
            kern = self._kernels.get(key)
            if kern is not None:
                self.hits += 1
                return kern
            self.misses += 1
        # Compile outside the lock (numba builds can be slow); a racing
        # duplicate compile is harmless — last write wins.
        kern = compile_kernel(op, values)
        with self._lock:
            self._kernels[key] = kern
        return kern

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._kernels.clear()

    def stats(self) -> dict[str, Any]:
        """JSON-serializable ``{entries, hits, misses, hit_rate}``."""
        with self._lock:
            entries = len(self._kernels)
            hits, misses = self.hits, self.misses
        total = hits + misses
        return {
            "entries": entries,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
        }


_DEFAULT_CACHE = KernelCache()


def default_cache() -> KernelCache:
    """The shared process-wide cache (every ``World`` references it, so
    engines and repeated ``spmd_run`` calls reuse compilations)."""
    return _DEFAULT_CACHE


# --------------------------------------------------------------------------
# Batched multi-operator accumulation: one data sweep for K operators.

#: Tile size (elements) for the shared sweep — small enough that a tile
#: of int64 stays L2-resident while K kernels each fold it.
_TILE_ELEMS = 1 << 15


def batched_accumulate(
    ops: Sequence[ReduceScanOp],
    values: Any,
    *,
    cache: KernelCache | None = None,
    metrics: Any = None,
) -> list[Any]:
    """Accumulate the *same* block under K operators, sharing the sweep.

    When every operator's kernel is tile-exact, the block is walked
    once in cache-sized tiles and each tile is folded into all K states
    while hot — one pass over memory instead of K.  Any non-tile-exact
    member demotes the whole batch to per-operator whole-block passes
    (identical numerics are non-negotiable).  Either way each result is
    byte-identical to ``accumulate_local(comm, op, values)`` per op:
    same pre/post hook placement, same kernel per op.
    """
    cache = cache if cache is not None else _DEFAULT_CACHE
    states = [op.ident() for op in ops]
    n = len(values)
    if n == 0:
        return states
    kernels = [cache.get(op, values) for op in ops]
    for i, op in enumerate(ops):
        states[i] = op.pre_accum(states[i], values[0])
    single_sweep = (
        len(ops) > 1
        and n > _TILE_ELEMS
        and all(k.tile_exact for k in kernels)
    )
    if single_sweep:
        for lo in range(0, n, _TILE_ELEMS):
            tile = values[lo : lo + _TILE_ELEMS]
            for i, op in enumerate(ops):
                states[i] = kernels[i].accumulate(op, states[i], tile)
        if metrics is not None and metrics.enabled:
            metrics.counter("kernels.batch.sweeps").inc()
            metrics.counter("kernels.batch.members").inc(len(ops))
    else:
        for i, op in enumerate(ops):
            states[i] = kernels[i].accumulate(op, states[i], values)
        if metrics is not None and metrics.enabled:
            metrics.counter("kernels.batch.fallback_passes").inc(len(ops))
    for i, op in enumerate(ops):
        states[i] = op.post_accum(states[i], values[n - 1])
    return states
