"""Chapel-style operator classes: the state lives in ``self``.

The paper's Chapel listings (4–7) store the reduction state in the
*fields of the operator class* — ``accum`` mutates ``this``, ``combine``
takes the other instance as its only argument, the default constructor
computes the identity.  The :class:`~repro.core.operator.ReduceScanOp`
protocol instead passes explicit state values, which is the natural
Python shape — but translating a Chapel listing then requires moving
every field access.

:class:`ChapelOp` removes that friction: subclass it exactly like a
Chapel reduction class and each *instance* is one accumulation state.

    class mink(ChapelOp):                     # Listing 4, line for line
        commutative = True

        def __init__(self, in_t_max, k=10):   # default constructor
            self.k = k                        #   computes the identity
            self.v = np.full(k, in_t_max)

        def accum(self, x):
            if x < self.v[0]:
                self.v[0] = x
                for i in range(1, self.k):
                    if self.v[i - 1] < self.v[i]:
                        self.v[i - 1], self.v[i] = self.v[i], self.v[i - 1]

        def combine(self, s):
            for x in s.v:
                self.accum(x)

        def gen(self):
            return self.v

    minimums = global_reduce(comm, mink.as_op(INT_MAX, 10), A)

``as_op(*ctor_args)`` returns the ReduceScanOp adapter; fresh states are
fresh instances (the "compiler creates as many instances of that class
as are needed", §3.1.1).  Optional methods mirror the protocol:
``pre_accum``/``post_accum``/``red_gen``/``scan_gen(x)``, all taking
``self`` as the state.
"""

from __future__ import annotations

from typing import Any

from repro.core.operator import ReduceScanOp, state_equal
from repro.errors import OperatorError
from repro.util.sizing import payload_nbytes

__all__ = ["ChapelOp", "ChapelOpAdapter"]


class ChapelOp:
    """Base class for Chapel-style reduction/scan operator classes.

    Subclasses must define ``accum(self, x)`` and ``combine(self, s)``;
    may define ``pre_accum``/``post_accum``/``gen``/``red_gen``/
    ``scan_gen``; may set ``commutative`` (default True, like Chapel's
    undeclared param).  The constructor is the identity function.
    """

    commutative: bool = True

    def accum(self, x: Any) -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must define accum(self, x)"
        )

    def combine(self, s: "ChapelOp") -> None:
        raise NotImplementedError(
            f"{type(self).__name__} must define combine(self, s)"
        )

    def gen(self) -> Any:
        return self

    def transfer_nbytes(self) -> int:
        return payload_nbytes(vars(self))

    @classmethod
    def as_op(cls, *ctor_args: Any, **ctor_kwargs: Any) -> "ChapelOpAdapter":
        """The ReduceScanOp adapter; arguments go to every fresh state's
        constructor (Chapel's ``mink(integer, 10)`` instantiation)."""
        return ChapelOpAdapter(cls, ctor_args, ctor_kwargs)


class ChapelOpAdapter(ReduceScanOp):
    """Adapts a ChapelOp subclass to the explicit-state protocol."""

    def __init__(self, cls: type, ctor_args: tuple, ctor_kwargs: dict):
        if not (isinstance(cls, type) and issubclass(cls, ChapelOp)):
            raise OperatorError(
                f"as_op() needs a ChapelOp subclass, got {cls!r}"
            )
        self._cls = cls
        self._args = ctor_args
        self._kwargs = ctor_kwargs
        self.commutative = bool(cls.commutative)

    @property
    def name(self) -> str:
        return self._cls.__name__

    # -- protocol ----------------------------------------------------------

    def ident(self) -> ChapelOp:
        return self._cls(*self._args, **self._kwargs)

    def accum(self, state: ChapelOp, x: Any) -> ChapelOp:
        state.accum(x)
        return state

    def combine(self, s1: ChapelOp, s2: ChapelOp) -> ChapelOp:
        s1.combine(s2)
        return s1

    def pre_accum(self, state: ChapelOp, x: Any) -> ChapelOp:
        hook = getattr(state, "pre_accum", None)
        if hook is not None:
            hook(x)
        return state

    def post_accum(self, state: ChapelOp, x: Any) -> ChapelOp:
        hook = getattr(state, "post_accum", None)
        if hook is not None:
            hook(x)
        return state

    def gen(self, state: ChapelOp) -> Any:
        return state.gen()

    def red_gen(self, state: ChapelOp) -> Any:
        hook = getattr(state, "red_gen", None)
        if hook is not None:
            return hook()
        return state.gen()

    def scan_gen(self, state: ChapelOp, x: Any) -> Any:
        hook = getattr(state, "scan_gen", None)
        if hook is not None:
            return hook(x)
        return state.gen()

    def accum_block(self, state: ChapelOp, values) -> ChapelOp:
        hook = getattr(state, "accum_block", None)
        if hook is not None:
            hook(values)
            return state
        for x in values:
            state.accum(x)
        return state

    def state_eq(self, s1: ChapelOp, s2: ChapelOp) -> bool:
        return state_equal(vars(s1), vars(s2))
