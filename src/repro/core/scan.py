"""The global-view scan drivers (paper Listing 3).

Exclusive scan::

    forall processors q in 0..p-1          # (the paper writes 0..p-2 for
        s_q <- f_ident()                   #  the accumulate phase; rank
        ... accumulate phase ...           #  p-1's state is simply unused)
        LOCAL_XSCAN(f_ident, f_combine, s_q)
    forall processors q in 0..p-1
        for i in 0..n-1
            out_q(i) <- f_scan_gen(s_q, in_q(i), ...)
            s_q      <- f_accum(s_q, in_q(i), ...)

The inclusive scan interchanges the last two lines (paper: "By
interchanging lines 12 and 13, this algorithm is made to compute an
inclusive scan").

Note the asymmetry the paper stresses (§2): the exclusive scan is the
primitive — the inclusive scan derives from it *locally* (generate after
accumulating), whereas deriving exclusive from inclusive would need
communication or an invertible combine.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core import kernels as _kernels
from repro.core.operator import ReduceScanOp
from repro.core.reduce import accumulate_local, wire_op
from repro.errors import OperatorError
from repro.localview.api import LOCAL_XSCAN
from repro.mpi.comm import Communicator
from repro.util.sizing import payload_nbytes

__all__ = ["global_scan", "global_xscan"]


def _scan_impl(
    comm: Communicator,
    op: ReduceScanOp,
    values: Sequence[Any] | np.ndarray,
    *,
    exclusive: bool,
    accum_rate: str | None,
    combine_seconds: float | None,
    scan_rate: str | None,
    algorithm: str,
) -> list[Any]:
    if not isinstance(op, ReduceScanOp):
        raise OperatorError(
            f"global scans need a ReduceScanOp, got {type(op).__name__}; "
            "wrap plain functions with make_op()/from_binary()"
        )
    tr = comm.tracer
    if not tr.enabled:
        return _scan_phases(
            comm, op, values,
            exclusive=exclusive, accum_rate=accum_rate,
            combine_seconds=combine_seconds, scan_rate=scan_rate,
            algorithm=algorithm,
        )
    with tr.span("global_xscan" if exclusive else "global_scan", op=op.name):
        return _scan_phases(
            comm, op, values,
            exclusive=exclusive, accum_rate=accum_rate,
            combine_seconds=combine_seconds, scan_rate=scan_rate,
            algorithm=algorithm,
        )


def _scan_phases(
    comm: Communicator,
    op: ReduceScanOp,
    values: Sequence[Any] | np.ndarray,
    *,
    exclusive: bool,
    accum_rate: str | None,
    combine_seconds: float | None,
    scan_rate: str | None,
    algorithm: str,
) -> list[Any]:
    tr = comm.tracer
    # Accumulate phase (identical to the reduction's).
    state = accumulate_local(comm, op, values, accum_rate=accum_rate)
    # Combine phase: exclusive prefix of the per-rank states.  Always
    # exclusive — each rank needs the combination of *earlier* ranks'
    # states only; inclusivity is a local property of the generate loop.
    cs = op.combine_seconds if combine_seconds is None else combine_seconds
    if tr.enabled:
        with tr.span("combine", phase="combine", op=op.name) as sp:
            sp.add(nbytes=payload_nbytes(state))
            prefix = _scan_combine(comm, op, state, cs, algorithm)
    else:
        prefix = _scan_combine(comm, op, state, cs, algorithm)
    # Generate phase: walk the local data again, emitting outputs.
    if tr.enabled:
        with tr.span("generate", phase="generate", op=op.name) as sp:
            out = _scan_generate(
                comm, op, prefix, values, exclusive, accum_rate, scan_rate
            )
            sp.add(elements=len(values))
        return out
    return _scan_generate(
        comm, op, prefix, values, exclusive, accum_rate, scan_rate
    )


def _scan_combine(
    comm: Communicator,
    op: ReduceScanOp,
    state: Any,
    cs: float | None,
    algorithm: str,
) -> Any:
    if comm.context.world.can_fail:
        # Restartable path (mirrors global_reduce): the
        # post-accumulate state is the checkpoint; on a combine
        # failure, survivors shrink and re-run the prefix over
        # the surviving states (commutative ops only), so each
        # survivor's prefix covers its surviving predecessors.
        from repro.core.resilient import resilient_combine

        prefix, _rcomm = resilient_combine(
            comm, op, state,
            lambda c, s: LOCAL_XSCAN(
                c, op.ident, wire_op(op), s,
                commutative=op.commutative, combine_seconds=cs,
                algorithm=algorithm,
            ),
        )
        return prefix
    return LOCAL_XSCAN(
        comm, op.ident, wire_op(op), state,
        commutative=op.commutative, combine_seconds=cs,
        algorithm=algorithm,
    )


def _scan_generate(
    comm: Communicator,
    op: ReduceScanOp,
    prefix: Any,
    values: Sequence[Any] | np.ndarray,
    exclusive: bool,
    accum_rate: str | None,
    scan_rate: str | None,
) -> list[Any]:
    # The kernel tier's scan path executes the same expressions as the
    # operator's own scan_block (elementwise kernels) or delegates to it
    # outright, so routing through it never changes results; with
    # kernels disabled the operator method is called directly.
    if _kernels.kernels_enabled() and len(values) > 0:
        kcache = getattr(comm.context.world, "kernel_cache", None)
        if kcache is None:
            kcache = _kernels.default_cache()
        kern = kcache.get(op, values)
        m = comm.tracer.metrics
        if m.enabled:
            m.counter(f"kernels.scan.{kern.kind}").inc()
        out, _final = kern.scan(op, prefix, values, exclusive=exclusive)
    else:
        out, _final = op.scan_block(prefix, values, exclusive=exclusive)
    rate = accum_rate if accum_rate is not None else op.accum_rate
    if scan_rate is None:
        scan_rate = rate
    if scan_rate is not None and len(values) > 0:
        comm.charge_elements(scan_rate, len(values), f"scan_gen:{op.name}")
    return out


def global_xscan(
    comm: Communicator,
    op: ReduceScanOp,
    values: Sequence[Any] | np.ndarray,
    *,
    accum_rate: str | None = None,
    combine_seconds: float | None = None,
    scan_rate: str | None = None,
    algorithm: str = "auto",
) -> list[Any]:
    """Global-view **exclusive** scan: output ``i`` reflects all elements
    strictly before global position ``i`` (the first output is generated
    from the identity state).

    Every rank returns the list of outputs for its local block.
    """
    return _scan_impl(
        comm, op, values,
        exclusive=True, accum_rate=accum_rate,
        combine_seconds=combine_seconds, scan_rate=scan_rate,
        algorithm=algorithm,
    )


def global_scan(
    comm: Communicator,
    op: ReduceScanOp,
    values: Sequence[Any] | np.ndarray,
    *,
    accum_rate: str | None = None,
    combine_seconds: float | None = None,
    scan_rate: str | None = None,
    algorithm: str = "auto",
) -> list[Any]:
    """Global-view **inclusive** scan: output ``i`` reflects all elements
    up to and including global position ``i``.

    Every rank returns the list of outputs for its local block.
    """
    return _scan_impl(
        comm, op, values,
        exclusive=False, accum_rate=accum_rate,
        combine_seconds=combine_seconds, scan_rate=scan_rate,
        algorithm=algorithm,
    )
