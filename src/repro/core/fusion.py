"""Bucketed fusion of concurrent reductions.

A :class:`ReductionBucket` coalesces several pending reductions —
global-view :func:`~repro.core.reduce.global_reduce` calls and wire-level
``LOCAL_ALLREDUCE``-style values, possibly under *different* operators —
into shared combine **waves**: one tree traversal carries the product of
the member states, generalizing :class:`repro.ops.fused.FusedOp` from
"one operator over k projections of one element" to "k independent
reductions issued together".  K queued reductions that fuse into one
wave cost one collective's latency instead of K — the same lever as
gradient bucketing in distributed training stacks, and the batching the
paper's local-view aggregation argues for.

Bit-identity contract
---------------------

Fused results are bit-identical to the corresponding sequence of
blocking calls, for every operator (commutative or not):

* an entry joins a wave only if its *own* ``algorithm="auto"`` choice
  would be recursive doubling (true for every non-splittable state —
  scalars, objects, tuple states — and for splittable arrays under the
  tuned byte threshold); the wave itself is pinned to recursive
  doubling, so each member goes through exactly the association order
  its blocking call would have used;
* entries whose auto choice is a segmenting schedule (large splittable
  arrays routed to ring/Rabenseifner) are dispatched as *individual*
  nonblocking collectives with ``algorithm="auto"`` — again the blocking
  association order — because fusing them would trade away their
  bandwidth-optimal schedule for no latency win.

The fuse-or-dispatch watermark comes from the same fitted
:class:`~repro.mpi.tuning.DecisionTable` as ``algorithm="auto"``
(``python -m repro tune`` fits both), so the two decisions share one
cost model.

Failure semantics: waves ride the nonblocking request layer, so a peer
fail-stop surfaces as ``RankFailedError`` from ``waitall()``/
``result()``; the bucket does not run the resilient shrink-and-retry
recovery of ``global_reduce`` (fuse inside a ``can_fail`` world only if
the caller handles the error).  Under lossy plans the reliable-delivery
layer makes fused results identical to fault-free runs, like every other
collective.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.core.operator import ReduceScanOp
from repro.core.reduce import accumulate_local, accumulate_local_many, wire_op
from repro.errors import CommunicatorError
from repro.localview.api import _as_op
from repro.mpi import tuning as _tuning
from repro.mpi.comm import Communicator
from repro.mpi.op import Op
from repro.util.sizing import payload_nbytes

__all__ = ["PendingReduction", "ReductionBucket", "global_reduce_many"]


class _WaveState(list):
    """Product state carried by one fused combine wave: slot ``i`` holds
    member ``i``'s state (the :class:`repro.ops.fused._FusedState`
    pattern, across independent reductions instead of projections)."""

    def transfer_nbytes(self) -> int:
        return sum(payload_nbytes(s) for s in self)


def _wave_op(member_ops: Sequence[Op]) -> Op:
    """The product operator combining two :class:`_WaveState`\\ s slot by
    slot.  Commutative only if every member is (the wave is pinned to the
    order-preserving recursive doubling either way)."""

    def fn(a: _WaveState, b: _WaveState) -> _WaveState:
        for i, mop in enumerate(member_ops):
            a[i] = mop.fn(a[i], b[i])
        return a

    return Op(
        fn,
        commutative=all(m.commutative for m in member_ops),
        name=f"fused[{len(member_ops)}]",
    )


class PendingReduction:
    """Handle to one reduction queued in a :class:`ReductionBucket`."""

    __slots__ = ("op_name", "_wire", "_state", "_generate", "_bucket",
                 "_result", "_done")

    def __init__(self, bucket: "ReductionBucket", wire: Op, state: Any,
                 generate: Callable[[Any], Any] | None):
        self.op_name = wire.name
        self._wire = wire
        self._state = state
        self._generate = generate
        self._bucket = bucket
        self._result: Any = None
        self._done = False

    @property
    def done(self) -> bool:
        """True once the fused wave carrying this entry has completed."""
        return self._done

    def result(self) -> Any:
        """The reduction result, flushing and waiting if necessary."""
        if not self._done:
            self._bucket.waitall()
        return self._result

    def _deliver(self, raw: Any) -> None:
        self._result = self._generate(raw) if self._generate is not None else raw
        self._done = True


class ReductionBucket:
    """Coalesces pending reductions into shared combine waves.

    Usable directly (``add``/``allreduce`` then ``waitall``) or as a
    context manager via :meth:`repro.mpi.comm.Communicator.fused`.
    Queued entries fuse until the pending bytes cross ``max_bytes``
    (default: the fitted threshold from ``repro.mpi.tuning``), which
    flushes a wave as a *nonblocking* collective — so waves themselves
    overlap — and ``waitall()`` flushes the remainder and completes
    everything.
    """

    def __init__(self, comm: Communicator, *, max_bytes: int | None = None):
        self._comm = comm
        if max_bytes is None:
            max_bytes = _tuning.fusion_flush_bytes(comm.size)
        self._max_bytes = max_bytes
        self._queue: list[PendingReduction] = []
        self._queued_bytes = 0
        self._inflight: list[tuple[Any, list[PendingReduction], Callable]] = []

    # -- queueing ----------------------------------------------------------

    def add(
        self,
        op: ReduceScanOp,
        values: Sequence[Any] | np.ndarray,
        *,
        accum_rate: str | None = None,
    ) -> PendingReduction:
        """Queue a global-view reduction (the fused counterpart of
        :func:`repro.core.reduce.global_reduce` with ``root=None``): the
        accumulate phase runs now, the combine wave is deferred, and the
        generate phase runs at delivery."""
        state = accumulate_local(self._comm, op, values, accum_rate=accum_rate)
        return self._enqueue(wire_op(op), state, op.red_gen)

    def add_many(
        self,
        ops: Sequence[ReduceScanOp],
        values: Sequence[Any] | np.ndarray,
        *,
        accum_rate: str | None = None,
    ) -> list[PendingReduction]:
        """Queue K reductions of the *same* local block, sharing one
        accumulate-phase data sweep when every operator's kernel is
        tile-exact (:func:`repro.core.reduce.accumulate_local_many`).
        Results are bit-identical to K :meth:`add` calls."""
        states = accumulate_local_many(
            self._comm, ops, values, accum_rate=accum_rate
        )
        return [
            self._enqueue(wire_op(op), state, op.red_gen)
            for op, state in zip(ops, states)
        ]

    def allreduce(
        self,
        value: Any,
        op: Op | Callable[[Any, Any], Any],
        *,
        commutative: bool = True,
        identity: Callable[[], Any] | None = None,
    ) -> PendingReduction:
        """Queue a wire-level allreduce of ``value`` (the fused
        counterpart of ``comm.allreduce`` / ``LOCAL_ALLREDUCE``)."""
        return self._enqueue(_as_op(op, commutative, identity), value, None)

    def _enqueue(self, wire: Op, state: Any,
                 generate: Callable[[Any], Any] | None) -> PendingReduction:
        pending = PendingReduction(self, wire, state, generate)
        comm = self._comm
        nbytes, splittable = comm._tuning_inputs(state, wire, comm.size)
        choice = _tuning.choose_allreduce(
            nbytes, comm.size, wire.commutative, splittable
        )
        if choice != "recursive_doubling":
            # This entry's own auto schedule segments the payload; fusing
            # it would both break bit-identity with the blocking call and
            # forfeit the bandwidth-optimal schedule.  Dispatch it alone.
            self._dispatch([pending], fused=False)
            return pending
        self._queue.append(pending)
        self._queued_bytes += payload_nbytes(state)
        if self._queued_bytes > self._max_bytes and len(self._queue) > 1:
            self.flush()
        return pending

    # -- flushing ----------------------------------------------------------

    def flush(self) -> None:
        """Issue the queued entries as one fused wave (nonblocking); a
        single queued entry goes out as a plain collective."""
        if not self._queue:
            return
        queue, self._queue, self._queued_bytes = self._queue, [], 0
        self._dispatch(queue, fused=len(queue) > 1)

    def _dispatch(self, entries: list[PendingReduction], *, fused: bool) -> None:
        comm = self._comm
        if not fused:
            (entry,) = entries
            req = comm.iallreduce(entry._state, entry._wire)
            self._inflight.append((req, entries, self._deliver_single))
            return
        m = comm.tracer.metrics
        if m.enabled:
            m.counter("fusion.waves").inc()
            m.counter("fusion.waves_saved").inc(len(entries) - 1)
            m.histogram("fusion.wave.members").observe(len(entries))
            m.histogram("fusion.wave.nbytes").observe(
                sum(payload_nbytes(e._state) for e in entries)
            )
        homogeneous = self._concat_wave(entries)
        if homogeneous is not None:
            self._inflight.append(homogeneous)
            return
        wave = _WaveState(e._state for e in entries)
        wop = _wave_op([e._wire for e in entries])
        req = comm.iallreduce(wave, wop, algorithm="recursive_doubling")
        self._inflight.append((req, entries, self._deliver_wave))

    def _concat_wave(self, entries: list[PendingReduction]):
        """Fast path: members sharing one elementwise combine over
        same-dtype scalars/1-D arrays concatenate into a single array
        wave (one payload, no per-slot Python dispatch).  Recursive
        doubling combines the concatenation exactly as it would each
        member, so bit-identity is preserved."""
        first = entries[0]._wire
        if not first.elementwise:
            return None
        parts = []
        for e in entries:
            if e._wire.fn is not first.fn:
                return None
            arr = np.asarray(e._state)
            if arr.ndim > 1 or arr.dtype != np.asarray(entries[0]._state).dtype:
                return None
            if arr.dtype == object:
                return None
            parts.append(np.atleast_1d(arr))
        offsets = np.cumsum([0] + [p.shape[0] for p in parts])
        shapes = [np.asarray(e._state).ndim for e in entries]

        def deliver(raw: Any, members: list[PendingReduction]) -> None:
            for i, e in enumerate(members):
                piece = raw[offsets[i]:offsets[i + 1]]
                e._deliver(piece[0] if shapes[i] == 0 else piece)

        req = self._comm.iallreduce(
            np.concatenate(parts), first, algorithm="recursive_doubling"
        )
        return (req, entries, deliver)

    @staticmethod
    def _deliver_single(raw: Any, entries: list[PendingReduction]) -> None:
        entries[0]._deliver(raw)

    @staticmethod
    def _deliver_wave(raw: Any, entries: list[PendingReduction]) -> None:
        for slot, entry in zip(raw, entries):
            entry._deliver(slot)

    # -- completion --------------------------------------------------------

    def waitall(self) -> None:
        """Flush the queue and wait for every in-flight wave; afterwards
        every handle's ``result()`` is ready."""
        self.flush()
        inflight, self._inflight = self._inflight, []
        for req, entries, deliver in inflight:
            deliver(req.wait(), entries)

    def __enter__(self) -> "ReductionBucket":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.waitall()
        return False


def global_reduce_many(
    comm: Communicator,
    items: Sequence[tuple[ReduceScanOp, Sequence[Any] | np.ndarray]],
    *,
    accum_rate: str | None = None,
    max_bytes: int | None = None,
) -> list[Any]:
    """Run K global reductions as fused combine waves; returns their
    results in order.  Equivalent to (and bit-identical with)
    ``[global_reduce(comm, op, values) for op, values in items]``, at a
    fraction of the combine-phase latency.

    Consecutive items reducing the *same* ``values`` object additionally
    share one accumulate-phase data sweep (:meth:`ReductionBucket.add_many`)
    when their kernels allow it — the K-operators-one-block case of
    ``comm.fused()`` costs one pass over memory instead of K."""
    bucket = ReductionBucket(comm, max_bytes=max_bytes)
    items = list(items)
    handles: list[PendingReduction] = []
    i = 0
    while i < len(items):
        op, values = items[i]
        j = i + 1
        while j < len(items) and items[j][1] is values:
            j += 1
        if j - i > 1:
            handles.extend(
                bucket.add_many(
                    [o for o, _ in items[i:j]], values, accum_rate=accum_rate
                )
            )
        else:
            handles.append(bucket.add(op, values, accum_rate=accum_rate))
        i = j
    bucket.waitall()
    return [h.result() for h in handles]
