"""Restartable combine phases for the global-view drivers.

The paper's two-phase structure is what makes user-defined reductions
and scans recoverable: after the accumulate phase each rank holds a
compact operator state — a natural checkpoint — so a failed combine can
be re-run over the survivors without redoing any local work.

:func:`resilient_combine` wraps one combine attempt in the standard
ULFM recovery loop:

1. Deep-copy the post-accumulate state (the checkpoint).
2. Attempt the combine.  A peer's fail-stop surfaces as
   :class:`~repro.errors.RankFailedError` (failure detector) or
   :class:`~repro.errors.RevokedError` (a peer already revoked); the
   first survivor to notice revokes the communicator, which releases
   everyone else blocked mid-collective.
3. All survivors :meth:`~repro.mpi.comm.Communicator.agree` on whether
   the combine completed everywhere.  If yes, done — agreement makes
   "some ranks finished, some didn't" impossible to mistake for success.
4. If not — and the operator is **commutative** — survivors
   :meth:`~repro.mpi.comm.Communicator.shrink` and retry from the
   checkpoints.  The recovered result is exactly the survivor-only
   reduction/scan: the dead rank's local contribution is lost with it.
5. A **non-commutative** operator cannot be recovered this way (its
   result is defined by the rank-order concatenation of *all* blocks,
   so dropping a rank silently changes the answer's meaning); it raises
   a clean :class:`~repro.errors.OperatorError` instead.

Recovery activity is surfaced through ``repro.obs`` metrics:
``faults.recoveries`` counts recovery rounds and
``faults.recovery_vtime`` observes the virtual-time overhead between
first failure detection and the successful re-combine.

This module is only entered when the run's fault plan can actually
fail-stop a rank (``World.can_fail``); fault-free runs keep the exact
message counts and virtual times they had before the fault subsystem
existed.
"""

from __future__ import annotations

import copy
from typing import Any, Callable

from repro.core.operator import ReduceScanOp
from repro.errors import OperatorError, RankFailedError, RevokedError
from repro.mpi.comm import Communicator

__all__ = ["resilient_combine"]

#: Safety bound on recovery rounds (each round needs a *new* failure to
#: recur, so nprocs - 1 rounds is the theoretical maximum anyway).
_MAX_ROUNDS = 64


def resilient_combine(
    comm: Communicator,
    op: ReduceScanOp,
    state: Any,
    run: Callable[[Communicator, Any], Any],
) -> tuple[Any, Communicator]:
    """Run ``run(comm, state)`` with checkpoint/shrink/retry recovery.

    Returns ``(result, communicator_used)`` — after a recovery the
    communicator is the shrunken survivor group, which the caller needs
    to interpret rooted results.
    """
    checkpoint = copy.deepcopy(state)
    metrics = comm.tracer.metrics
    clock = comm.context.clock
    first_failure_t: float | None = None
    comm_r = comm
    for _ in range(_MAX_ROUNDS):
        ok = True
        total = None
        try:
            total = run(comm_r, state)
        except (RankFailedError, RevokedError):
            # Release peers still blocked mid-collective, then fall
            # through to the agreement so every survivor leaves this
            # round with the same verdict.
            comm_r.revoke()
            ok = False
            if first_failure_t is None:
                first_failure_t = clock.t
        if comm_r.agree(ok):
            if first_failure_t is not None:
                metrics.histogram("faults.recovery_vtime").observe(
                    max(clock.t - first_failure_t, 0.0)
                )
            return total, comm_r
        if not op.commutative:
            raise OperatorError(
                f"operator {op.name!r} is non-commutative: its result is "
                "defined by the rank-order concatenation of every rank's "
                "block, so it cannot be recovered by re-combining over "
                "survivors; re-run the computation on a shrunken "
                "communicator instead (see docs/fault_model.md)"
            )
        metrics.counter("faults.recoveries").inc()
        if first_failure_t is None:
            first_failure_t = clock.t
        comm_r = comm_r.shrink()
        state = copy.deepcopy(checkpoint)
    raise OperatorError(
        f"combine of {op.name!r} failed to recover after {_MAX_ROUNDS} rounds"
    )
