"""Operator-law validation (sampling-based).

The paper's abstraction is only correct when the user's operator obeys
the algebra the runtime exploits:

* **identity law** — ``combine(ident(), s) == s`` and (for the schedules
  that place identities on the right) ``combine(s, ident()) == s``;
* **associativity** — ``combine`` associates, which is what licenses the
  log-tree combine phase ("If the ⊕ operator is associative then an
  efficient parallel implementation exists", §1);
* **commutativity flag honesty** — if ``commutative`` is True, combine
  must commute; the paper's §4.1 experiment shows exactly what happens
  when it is dishonestly set (the sorted reduction "did fail to verify");
* **accumulate/combine consistency** — accumulating a sequence must
  equal combining the accumulations of any contiguous split, which is
  the identity the accumulate/combine phase split relies on.

These cannot be proven for arbitrary user code, so they are *sampled*:
:func:`check_operator` draws random splits of user-provided sample data
and raises :class:`~repro.errors.OperatorLawError` on any violation.
Hypothesis-based tests build on the same helpers.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.operator import ReduceScanOp
from repro.errors import OperatorLawError
from repro.util.sizing import copy_for_transfer

__all__ = [
    "check_operator",
    "check_identity_law",
    "check_associativity",
    "check_commutativity",
    "check_split_consistency",
    "sequential_reduce",
    "sequential_scan",
]


def _accumulate(op: ReduceScanOp, values: Sequence[Any]) -> Any:
    """Accumulate ``values`` into a fresh state with pre/post hooks."""
    state = op.ident()
    n = len(values)
    if n > 0:
        state = op.pre_accum(state, values[0])
        state = op.accum_block(state, values)
        state = op.post_accum(state, values[n - 1])
    return state


def sequential_reduce(op: ReduceScanOp, values: Sequence[Any]) -> Any:
    """Single-processor reference semantics of the reduction."""
    return op.red_gen(_accumulate(op, values))


def sequential_scan(
    op: ReduceScanOp, values: Sequence[Any], *, exclusive: bool = False
) -> list[Any]:
    """Single-processor reference semantics of the scan."""
    state = op.ident()
    if len(values) > 0:
        state = op.pre_accum(state, values[0])
    out, state = op.scan_block(state, values, exclusive=exclusive)
    return out


def check_identity_law(op: ReduceScanOp, state: Any) -> None:
    """combine(ident, s) == s == combine(s, ident) (on copies)."""
    left = op.combine(op.ident(), copy_for_transfer(state))
    if not op.state_eq(left, state):
        raise OperatorLawError(
            f"{op.name}: combine(ident(), s) != s — the identity state is "
            "not a left identity; empty ranks would corrupt results"
        )
    right = op.combine(copy_for_transfer(state), op.ident())
    if not op.state_eq(right, state):
        raise OperatorLawError(
            f"{op.name}: combine(s, ident()) != s — the identity state is "
            "not a right identity; empty ranks would corrupt results"
        )


def check_associativity(op: ReduceScanOp, s1: Any, s2: Any, s3: Any) -> None:
    """(s1 ⊕ s2) ⊕ s3 == s1 ⊕ (s2 ⊕ s3) (on copies)."""
    a = op.combine(
        op.combine(copy_for_transfer(s1), copy_for_transfer(s2)),
        copy_for_transfer(s3),
    )
    b = op.combine(
        copy_for_transfer(s1),
        op.combine(copy_for_transfer(s2), copy_for_transfer(s3)),
    )
    if not op.state_eq(a, b):
        raise OperatorLawError(
            f"{op.name}: combine is not associative on sampled states; "
            "tree-shaped combining would give schedule-dependent results"
        )


def check_commutativity(op: ReduceScanOp, s1: Any, s2: Any) -> None:
    """If flagged commutative, s1 ⊕ s2 == s2 ⊕ s1 (on copies)."""
    if not op.commutative:
        return
    a = op.combine(copy_for_transfer(s1), copy_for_transfer(s2))
    b = op.combine(copy_for_transfer(s2), copy_for_transfer(s1))
    if not op.state_eq(a, b):
        raise OperatorLawError(
            f"{op.name}: flagged commutative but combine(s1, s2) != "
            "combine(s2, s1) on sampled states — as-available combining "
            "would give wrong results (the paper's §4.1 failure mode)"
        )


def check_split_consistency(
    op: ReduceScanOp, values: Sequence[Any], split: int
) -> None:
    """accumulate(values) == combine(accumulate(left), accumulate(right))."""
    whole = _accumulate(op, values)
    left = _accumulate(op, values[:split])
    right = _accumulate(op, values[split:])
    combined = op.combine(left, right)
    if not op.state_eq(whole, combined):
        raise OperatorLawError(
            f"{op.name}: accumulating a block differs from combining the "
            f"accumulations of its split at {split} — the accumulate/"
            "combine phase split would change results with the number of "
            "processors"
        )


def check_operator(
    op: ReduceScanOp,
    sample_values: Sequence[Any],
    *,
    n_trials: int = 20,
    rng: np.random.Generator | None = None,
) -> None:
    """Sample the operator laws on user-supplied representative data.

    Raises :class:`~repro.errors.OperatorLawError` on the first violation;
    returns None when all sampled checks pass.  Passing is evidence, not
    proof — but it catches the common mistakes (wrong identity, an accum
    that is not a homomorphism, a dishonest commutative flag) before they
    become wrong answers at scale.
    """
    values = list(sample_values)
    if len(values) < 2:
        raise ValueError(
            "check_operator needs at least 2 sample values to test laws"
        )
    rng = rng if rng is not None else np.random.default_rng(0)

    def random_state() -> Any:
        lo = int(rng.integers(0, len(values)))
        hi = int(rng.integers(lo + 1, len(values) + 1))
        return _accumulate(op, values[lo:hi])

    check_identity_law(op, _accumulate(op, values))
    for _ in range(n_trials):
        check_identity_law(op, random_state())
        check_associativity(op, random_state(), random_state(), random_state())
        check_commutativity(op, random_state(), random_state())
        check_split_consistency(
            op, values, int(rng.integers(0, len(values) + 1))
        )
