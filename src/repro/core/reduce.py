"""The global-view reduction driver (paper Listing 2).

::

    forall processors q in 0..p-1
        s_q <- f_ident()
        if n > 0:   s_q <- f_pre_accum(s_q, in_q(0), ...)
        for i in 0..n-1:  s_q <- f_accum(s_q, in_q(i), ...)
        if n > 0:   s_q <- f_post_accum(s_q, in_q(n-1), ...)
        LOCAL_REDUCE(f_combine, s_q)
    forall processors q in 0..p-1
        out_q <- f_red_gen(s_q)

The accumulate phase runs locally with no communication; the combine
phase is one local-view reduction of the per-rank states; the generate
phase translates the final state to the output type.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core import kernels as _kernels
from repro.core.operator import ReduceScanOp
from repro.errors import OperatorError
from repro.localview.api import LOCAL_ALLREDUCE, LOCAL_REDUCE
from repro.mpi import tuning as _tuning
from repro.mpi.comm import Communicator
from repro.mpi.op import Op
from repro.runtime.procworld import MISS as _proc_MISS
from repro.util.sizing import payload_nbytes

__all__ = [
    "global_reduce",
    "accumulate_local",
    "accumulate_local_many",
    "wire_op",
]

#: Target chunk size for the overlapped accumulate/combine pipeline.
_OVERLAP_CHUNK_BYTES = 64 * 1024


def wire_op(op: ReduceScanOp) -> Op:
    """Lower a global-view operator's combine function to a wire-level
    :class:`~repro.mpi.op.Op`, carrying the metadata the algorithm tuner
    needs (commutativity, elementwise splittability, identity)."""
    return Op(
        op.combine,
        commutative=op.commutative,
        identity=op.ident,
        elementwise=getattr(op, "elementwise", False),
        name=op.name,
    )


def accumulate_local(
    comm: Communicator,
    op: ReduceScanOp,
    values: Sequence[Any] | np.ndarray,
    *,
    accum_rate: str | None = None,
) -> Any:
    """The accumulate phase: fold this rank's local values into a fresh
    state, with the pre/post hooks of Listing 2 (lines 2–8).

    Charges ``len(values)`` elements of virtual time at ``accum_rate``
    (or the operator's own ``accum_rate``) when one is set.
    """
    tr = comm.tracer
    if not tr.enabled:
        return _accumulate_impl(comm, op, values, accum_rate)
    with tr.span("accumulate", phase="accumulate", op=op.name) as sp:
        state = _accumulate_impl(comm, op, values, accum_rate)
        sp.add(nbytes=payload_nbytes(values), elements=len(values))
    return state


def accumulate_local_many(
    comm: Communicator,
    ops: Sequence[ReduceScanOp],
    values: Sequence[Any] | np.ndarray,
    *,
    accum_rate: str | None = None,
) -> list[Any]:
    """Accumulate the *same* local block under K operators, sharing one
    data sweep when every operator's kernel is tile-exact (see
    :func:`repro.core.kernels.batched_accumulate`).

    Each returned state is byte-identical to
    ``accumulate_local(comm, op, values)`` for the matching op, and the
    virtual-time charges and per-op accumulate spans are the same shape
    as K sequential calls — only the wall-clock data movement is shared.
    """
    n = len(values)
    if not _kernels.kernels_enabled() or len(ops) < 2 or n == 0:
        return [
            accumulate_local(comm, op, values, accum_rate=accum_rate)
            for op in ops
        ]
    tr = comm.tracer
    kcache = getattr(comm.context.world, "kernel_cache", None)
    states = _kernels.batched_accumulate(
        ops, values, cache=kcache,
        metrics=tr.metrics if tr.enabled else None,
    )
    nbytes = payload_nbytes(values)
    for op in ops:
        rate = accum_rate if accum_rate is not None else op.accum_rate
        if not tr.enabled:
            if rate is not None:
                comm.charge_elements(rate, n, f"accum:{op.name}")
            continue
        # Virtual time only advances inside charge_elements, so per-op
        # spans around the charges attribute phases exactly as K
        # sequential accumulate_local calls would.
        with tr.span("accumulate", phase="accumulate", op=op.name) as sp:
            sp.add(nbytes=nbytes, elements=n)
            if rate is not None:
                comm.charge_elements(rate, n, f"accum:{op.name}")
    return states


def _accumulate_impl(
    comm: Communicator,
    op: ReduceScanOp,
    values: Sequence[Any] | np.ndarray,
    accum_rate: str | None,
) -> Any:
    n = len(values)
    pool = getattr(comm.context.world, "proc_pool", None)
    if pool is not None and n > 0:
        # Process backend: offload the fold to this rank's worker
        # process.  The worker runs the identical kernel-tier fold
        # (byte-identical by the identity-oracle guarantee); virtual
        # time is charged here, in the parent, exactly as the
        # in-process fold below would charge it — so clocks, traces
        # and schedules cannot depend on where the fold ran.
        state = pool.accumulate(comm.context.rank, op, values)
        if state is not _proc_MISS:
            # Record the same schedule-cache ``kernel`` decision and
            # ``kernels.accum.*`` counter the inline fold would have,
            # so kernel-routing observability and adaptive-cache state
            # cannot depend on the backend either.
            if _kernels.kernels_enabled():
                _, kind = _kernel_route(comm, op, values, n)
                m = comm.tracer.metrics
                if m.enabled:
                    m.counter(f"kernels.accum.{kind}").inc()
            rate = accum_rate if accum_rate is not None else op.accum_rate
            if rate is not None:
                comm.charge_elements(rate, n, f"accum:{op.name}")
            return state
    state = op.ident()
    if n > 0:
        state = op.pre_accum(state, values[0])
        state = _accum_block_dispatch(comm, op, state, values, n)
        state = op.post_accum(state, values[n - 1])
    rate = accum_rate if accum_rate is not None else op.accum_rate
    if rate is not None and n > 0:
        comm.charge_elements(rate, n, f"accum:{op.name}")
    return state


def _accum_block_dispatch(
    comm: Communicator,
    op: ReduceScanOp,
    state: Any,
    values: Sequence[Any] | np.ndarray,
    n: int,
) -> Any:
    """Fold a non-empty block through the kernel tier.

    With kernels disabled (``REPRO_KERNELS=0`` /
    ``kernels.configure(enabled=False)``) this is exactly the pre-tier
    call — ``op.accum_block`` — with no kernel objects touched (the
    zero-alloc poison test pins that).  Otherwise the world's
    :class:`~repro.core.kernels.KernelCache` supplies the compiled
    kernel, and — only where the scalar loop is provably bit-identical
    (``loop_exact``) — the ``kernel`` decision dimension may route
    small blocks to the loop.  Results never depend on the routing.
    """
    if not _kernels.kernels_enabled():
        return op.accum_block(state, values)
    kern, kind = _kernel_route(comm, op, values, n)
    m = comm.tracer.metrics
    if m.enabled:
        m.counter(f"kernels.accum.{kind}").inc()
    if kind == "scalar":
        accum = op.accum
        for x in values:
            state = accum(state, x)
        return state
    return kern.accumulate(op, state, values)


def _kernel_route(
    comm: Communicator,
    op: ReduceScanOp,
    values: Sequence[Any] | np.ndarray,
    n: int,
) -> tuple[Any, str]:
    """The kernel-tier routing decision for a non-empty block: the
    compiled kernel plus the routing kind that will be (or, on the
    process backend, would have been) executed — ``"scalar"`` when the
    schedule cache routes a ``loop_exact`` kernel's block to the scalar
    loop, else the kernel's own kind.  Consulting the schedule cache is
    part of the decision: it feeds the adaptive-cache state, so both
    backends must make the same query."""
    world = comm.context.world
    kcache = getattr(world, "kernel_cache", None)
    if kcache is None:
        kcache = _kernels.default_cache()
    kern = kcache.get(op, values)
    if kern.loop_exact:
        nbytes = values.nbytes if isinstance(values, np.ndarray) else n << 3
        scache = getattr(world, "schedule_cache", None)
        if scache is not None:
            choice = scache.choose("kernel", nbytes, comm.size)
        else:
            choice = _tuning.choose_kernel(nbytes, comm.size)
        if choice == "scalar":
            return kern, "scalar"
    return kern, kern.kind


def global_reduce(
    comm: Communicator,
    op: ReduceScanOp,
    values: Sequence[Any] | np.ndarray,
    *,
    root: int | None = None,
    fanout: int = 2,
    accum_rate: str | None = None,
    combine_seconds: float | None = None,
    algorithm: str = "auto",
    overlap: str = "auto",
) -> Any:
    """Globally reduce the distributed data whose local block is
    ``values``, using the global-view operator ``op``.

    This is the Chapel expression ``op reduce A`` (paper §3.1.1): the
    caller thinks about one conceptual global array; both the accumulate
    and the combine phases live inside the abstraction.

    Parameters
    ----------
    comm:
        The communicator; every member must call with its own block.
        Blocks may be empty on some ranks (their contribution is the
        identity state).
    op:
        The operator.  Its ``commutative`` flag selects between
        order-preserving and as-available combining.
    values:
        This rank's local elements, ordered; across ranks the
        concatenation in rank order is the conceptual global array
        (which is what makes non-commutative operators meaningful).
    root:
        If None (default) every rank returns the result (allreduce
        flavor); otherwise only ``root`` returns it and others get None.
    fanout:
        Combining-tree fan-out for commutative operators (§1).
    accum_rate, combine_seconds:
        Cost-model overrides; default to the operator's own settings.
    algorithm:
        Combine-phase schedule, forwarded to the local-view layer.  The
        default ``"auto"`` consults :mod:`repro.mpi.tuning`'s decision
        table (operators with ``elementwise = True`` and 1-D array
        states become eligible for segmenting schedules).
    overlap:
        ``"auto"`` (default) pipelines accumulate and combine for large
        elementwise column-blocked inputs — the local array is split
        into column chunks and the combine rounds of chunk *i* progress
        (via nonblocking collectives) while ``accum_block`` runs on
        chunk *i+1*.  Bit-identical to the unpipelined path; only the
        virtual makespan changes.  ``"off"`` disables the pipeline.

    Returns
    -------
    ``op.red_gen(final_state)`` on the receiving rank(s).
    """
    if not isinstance(op, ReduceScanOp):
        raise OperatorError(
            f"global_reduce needs a ReduceScanOp, got {type(op).__name__}; "
            "wrap plain functions with make_op()/from_binary()"
        )
    tr = comm.tracer
    if not tr.enabled:
        return _global_reduce_impl(
            comm, op, values, root, fanout, accum_rate, combine_seconds,
            algorithm, overlap,
        )
    with tr.span("global_reduce", op=op.name):
        return _global_reduce_impl(
            comm, op, values, root, fanout, accum_rate, combine_seconds,
            algorithm, overlap,
        )


def _global_reduce_impl(
    comm: Communicator,
    op: ReduceScanOp,
    values: Sequence[Any] | np.ndarray,
    root: int | None,
    fanout: int,
    accum_rate: str | None,
    combine_seconds: float | None,
    algorithm: str,
    overlap: str,
) -> Any:
    tr = comm.tracer
    cs = op.combine_seconds if combine_seconds is None else combine_seconds
    if overlap == "auto" and root is None and algorithm == "auto":
        total = _overlapped_allreduce(
            comm, op, values, accum_rate=accum_rate, cs=cs
        )
        if total is not None:
            if not tr.enabled:
                return op.red_gen(total)
            with tr.span("generate", phase="generate", op=op.name):
                return op.red_gen(total)
    state = accumulate_local(comm, op, values, accum_rate=accum_rate)
    shrunk = False
    if tr.enabled:
        with tr.span("combine", phase="combine", op=op.name) as sp:
            sp.add(nbytes=payload_nbytes(state))
            total, shrunk, rcomm = _combine_phase(
                comm, op, state, root, fanout, cs, algorithm
            )
    else:
        total, shrunk, rcomm = _combine_phase(
            comm, op, state, root, fanout, cs, algorithm
        )
    if root is not None and shrunk:
        # The group shrank mid-combine: the result goes to the
        # original root if it survived, to every survivor otherwise
        # (rooted semantics are unsatisfiable without the root).
        root_world = comm._world_rank(root)
        if root_world in rcomm._members and comm.context.rank != root_world:
            return None
        if not tr.enabled:
            return op.red_gen(total)
        with tr.span("generate", phase="generate", op=op.name):
            return op.red_gen(total)
    if root is None or comm.rank == root:
        if not tr.enabled:
            return op.red_gen(total)
        with tr.span("generate", phase="generate", op=op.name):
            return op.red_gen(total)
    return None


def _combine_phase(
    comm: Communicator,
    op: ReduceScanOp,
    state: Any,
    root: int | None,
    fanout: int,
    cs: float | None,
    algorithm: str,
):
    wop = wire_op(op)
    if comm.context.world.can_fail:
        # Restartable path: the post-accumulate state is the
        # checkpoint; on a combine failure, survivors shrink and
        # re-combine from checkpoints (commutative ops only).
        # The allreduce flavor is used even for rooted reduces
        # so every survivor can answer if the root dies.
        from repro.core.resilient import resilient_combine

        total, rcomm = resilient_combine(
            comm, op, state,
            lambda c, s: LOCAL_ALLREDUCE(
                c, wop, s,
                commutative=op.commutative, combine_seconds=cs,
                algorithm=algorithm,
            ),
        )
        return total, rcomm is not comm, rcomm
    if root is None:
        total = LOCAL_ALLREDUCE(
            comm, wop, state,
            commutative=op.commutative, combine_seconds=cs,
            algorithm=algorithm,
        )
    else:
        total = LOCAL_REDUCE(
            comm, wop, state,
            root=root, commutative=op.commutative, fanout=fanout,
            combine_seconds=cs, algorithm=algorithm,
        )
    return total, False, comm


def _overlapped_allreduce(
    comm: Communicator,
    op: ReduceScanOp,
    values: Any,
    *,
    accum_rate: str | None,
    cs: float | None,
) -> Any:
    """The chunked accumulate/combine pipeline.  Returns the combined
    full state, or None when the input is not eligible.

    Eligibility: an allreduce-flavored call in a fault-free world, over
    a 2-D column-blocked ndarray (rows are elements, columns are state
    slots), an elementwise operator with the default pre/post hooks, a
    state large enough that the tuner would segment it, and a combine
    schedule whose per-element association order is independent of
    where the state is cut (recursive doubling / Rabenseifner — ring's
    rotation makes its association depend on segment boundaries, so it
    bails).  Under those gates the column chunks accumulate and combine
    bit-identically to the whole, because NumPy's axis-0 reduction is
    per-column independent and the schedule is pinned per chunk.

    Cost accounting: each chunk charges its fraction ``n·(hi-lo)/m`` of
    the accumulate elements at the operator's rate *before* the next
    chunk's combine is issued, so chunk i's combine rounds progress
    (engine drains on every block) while chunk i+1 accumulates — the
    overlapped time shows up as merged, not summed, virtual time.
    """
    if comm.size == 1 or comm.context.world.can_fail:
        return None
    if not isinstance(values, np.ndarray) or values.ndim != 2:
        return None
    if not getattr(op, "elementwise", False):
        return None
    cls = type(op)
    if (cls.pre_accum is not ReduceScanOp.pre_accum
            or cls.post_accum is not ReduceScanOp.post_accum):
        return None
    n, m = values.shape
    nprocs = comm.size
    if n == 0 or m < 2 * nprocs:
        return None
    # Probe the state dtype on a tiny slice (no virtual-time charges).
    probe = op.accum_block(op.ident(), values[:1, :2])
    if not isinstance(probe, np.ndarray) or probe.shape != (2,):
        return None
    if probe.dtype == object:
        return None
    state_nbytes = m * probe.itemsize
    if state_nbytes <= 2 * _OVERLAP_CHUNK_BYTES:
        return None  # not enough combine work to hide anything behind
    wop = wire_op(op)
    resolved = _tuning.choose_allreduce(
        state_nbytes, nprocs, wop.commutative, wop.elementwise and m >= nprocs
    )
    if resolved not in ("recursive_doubling", "rabenseifner"):
        return None
    chunk_cols = max(
        nprocs, int(np.ceil(m * _OVERLAP_CHUNK_BYTES / state_nbytes))
    )
    k = max(2, -(-m // chunk_cols))
    bounds = [m * i // k for i in range(k + 1)]
    rate = accum_rate if accum_rate is not None else op.accum_rate
    tr = comm.tracer
    requests = []
    for i in range(k):
        lo, hi = bounds[i], bounds[i + 1]
        sub = values[:, lo:hi]
        if tr.enabled:
            with tr.span("accumulate", phase="accumulate", op=op.name) as sp:
                chunk = op.accum_block(op.ident(), sub)
                sp.add(nbytes=sub.nbytes, elements=n * (hi - lo) / m)
        else:
            chunk = op.accum_block(op.ident(), sub)
        if rate is not None:
            comm.charge_elements(rate, n * (hi - lo) / m, f"accum:{op.name}")
        requests.append(
            comm.iallreduce(chunk, wop, combine_seconds=cs, algorithm=resolved)
        )
    return np.concatenate([np.atleast_1d(r.wait()) for r in requests])
