"""The global-view reduction driver (paper Listing 2).

::

    forall processors q in 0..p-1
        s_q <- f_ident()
        if n > 0:   s_q <- f_pre_accum(s_q, in_q(0), ...)
        for i in 0..n-1:  s_q <- f_accum(s_q, in_q(i), ...)
        if n > 0:   s_q <- f_post_accum(s_q, in_q(n-1), ...)
        LOCAL_REDUCE(f_combine, s_q)
    forall processors q in 0..p-1
        out_q <- f_red_gen(s_q)

The accumulate phase runs locally with no communication; the combine
phase is one local-view reduction of the per-rank states; the generate
phase translates the final state to the output type.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.operator import ReduceScanOp
from repro.errors import OperatorError
from repro.localview.api import LOCAL_ALLREDUCE, LOCAL_REDUCE
from repro.mpi.comm import Communicator
from repro.mpi.op import Op
from repro.util.sizing import payload_nbytes

__all__ = ["global_reduce", "accumulate_local", "wire_op"]


def wire_op(op: ReduceScanOp) -> Op:
    """Lower a global-view operator's combine function to a wire-level
    :class:`~repro.mpi.op.Op`, carrying the metadata the algorithm tuner
    needs (commutativity, elementwise splittability, identity)."""
    return Op(
        op.combine,
        commutative=op.commutative,
        identity=op.ident,
        elementwise=getattr(op, "elementwise", False),
        name=op.name,
    )


def accumulate_local(
    comm: Communicator,
    op: ReduceScanOp,
    values: Sequence[Any] | np.ndarray,
    *,
    accum_rate: str | None = None,
) -> Any:
    """The accumulate phase: fold this rank's local values into a fresh
    state, with the pre/post hooks of Listing 2 (lines 2–8).

    Charges ``len(values)`` elements of virtual time at ``accum_rate``
    (or the operator's own ``accum_rate``) when one is set.
    """
    tr = comm.tracer
    with tr.span("accumulate", phase="accumulate", op=op.name) as sp:
        state = op.ident()
        n = len(values)
        if n > 0:
            state = op.pre_accum(state, values[0])
            state = op.accum_block(state, values)
            state = op.post_accum(state, values[n - 1])
        rate = accum_rate if accum_rate is not None else op.accum_rate
        if rate is not None and n > 0:
            comm.charge_elements(rate, n, f"accum:{op.name}")
        if tr.enabled:
            sp.add(nbytes=payload_nbytes(values), elements=n)
    return state


def global_reduce(
    comm: Communicator,
    op: ReduceScanOp,
    values: Sequence[Any] | np.ndarray,
    *,
    root: int | None = None,
    fanout: int = 2,
    accum_rate: str | None = None,
    combine_seconds: float | None = None,
    algorithm: str = "auto",
) -> Any:
    """Globally reduce the distributed data whose local block is
    ``values``, using the global-view operator ``op``.

    This is the Chapel expression ``op reduce A`` (paper §3.1.1): the
    caller thinks about one conceptual global array; both the accumulate
    and the combine phases live inside the abstraction.

    Parameters
    ----------
    comm:
        The communicator; every member must call with its own block.
        Blocks may be empty on some ranks (their contribution is the
        identity state).
    op:
        The operator.  Its ``commutative`` flag selects between
        order-preserving and as-available combining.
    values:
        This rank's local elements, ordered; across ranks the
        concatenation in rank order is the conceptual global array
        (which is what makes non-commutative operators meaningful).
    root:
        If None (default) every rank returns the result (allreduce
        flavor); otherwise only ``root`` returns it and others get None.
    fanout:
        Combining-tree fan-out for commutative operators (§1).
    accum_rate, combine_seconds:
        Cost-model overrides; default to the operator's own settings.
    algorithm:
        Combine-phase schedule, forwarded to the local-view layer.  The
        default ``"auto"`` consults :mod:`repro.mpi.tuning`'s decision
        table (operators with ``elementwise = True`` and 1-D array
        states become eligible for segmenting schedules).

    Returns
    -------
    ``op.red_gen(final_state)`` on the receiving rank(s).
    """
    if not isinstance(op, ReduceScanOp):
        raise OperatorError(
            f"global_reduce needs a ReduceScanOp, got {type(op).__name__}; "
            "wrap plain functions with make_op()/from_binary()"
        )
    tr = comm.tracer
    with tr.span("global_reduce", op=op.name):
        state = accumulate_local(comm, op, values, accum_rate=accum_rate)
        cs = op.combine_seconds if combine_seconds is None else combine_seconds
        shrunk = False
        with tr.span("combine", phase="combine", op=op.name) as sp:
            if tr.enabled:
                sp.add(nbytes=payload_nbytes(state))
            wop = wire_op(op)
            if comm.context.world.can_fail:
                # Restartable path: the post-accumulate state is the
                # checkpoint; on a combine failure, survivors shrink and
                # re-combine from checkpoints (commutative ops only).
                # The allreduce flavor is used even for rooted reduces
                # so every survivor can answer if the root dies.
                from repro.core.resilient import resilient_combine

                total, rcomm = resilient_combine(
                    comm, op, state,
                    lambda c, s: LOCAL_ALLREDUCE(
                        c, wop, s,
                        commutative=op.commutative, combine_seconds=cs,
                        algorithm=algorithm,
                    ),
                )
                shrunk = rcomm is not comm
            elif root is None:
                total = LOCAL_ALLREDUCE(
                    comm, wop, state,
                    commutative=op.commutative, combine_seconds=cs,
                    algorithm=algorithm,
                )
            else:
                total = LOCAL_REDUCE(
                    comm, wop, state,
                    root=root, commutative=op.commutative, fanout=fanout,
                    combine_seconds=cs, algorithm=algorithm,
                )
        if root is not None and shrunk:
            # The group shrank mid-combine: the result goes to the
            # original root if it survived, to every survivor otherwise
            # (rooted semantics are unsatisfiable without the root).
            root_world = comm._world_rank(root)
            if root_world in rcomm._members and comm.context.rank != root_world:
                return None
            with tr.span("generate", phase="generate", op=op.name):
                return op.red_gen(total)
        if root is None or comm.rank == root:
            with tr.span("generate", phase="generate", op=op.name):
                return op.red_gen(total)
        return None
