"""The global-view operator protocol (paper Section 3).

A user-defined reduction/scan operator supplies up to seven functions
with the paper's type signatures (``in`` = input element type, ``state``
= accumulation type, ``out`` = result type)::

    ident      : ()              -> state
    pre_accum  : (state, in)     -> state      (optional)
    accum      : (state, in)     -> state
    post_accum : (state, in)     -> state      (optional)
    combine    : (state, state)  -> state
    red_gen    : (state)         -> out        (optional; default: gen)
    scan_gen   : (state, in)     -> out        (optional; default: gen)

plus a compile-time ``commutative`` flag (Listing 7's ``param``): when
False, the runtime restricts itself to order-preserving combining
schedules; when True, wider fan-out / combine-as-available schedules may
be used.

Conventions (matching the Chapel classes in Listings 4–7 and the RSMPI
DSL in Listing 8):

* ``accum``/``pre_accum``/``post_accum``/``combine`` may mutate their
  (left/state) argument and must return the state; ``combine`` must not
  mutate its *right* argument.  The driver owns every state object it
  passes in, so mutation is always safe.
* ``combine(s1, s2)``: ``s1`` is the accumulation of an *earlier*
  (lower-rank) contiguous run of the data than ``s2``.  Commutative
  operators may ignore this.
* The *generate* functions translate final states to outputs.  Like
  Chapel's shared ``gen``, :meth:`ReduceScanOp.gen` serves both roles
  unless ``red_gen``/``scan_gen`` are overridden (the ``counts``
  operator of Listing 6 overrides both).

Performance extensions (beyond the paper, but in its spirit — §3 notes
the accumulate function "should be optimized at the combine function's
expense"):

* ``accum_block(state, values)`` — vectorized accumulation of a whole
  local block (default: a Python loop over ``accum``).
* ``scan_block(state, values)`` — vectorized "generate + re-accumulate"
  pass for the scan's second phase (default: a Python loop).
* ``accum_rate`` / ``combine_seconds`` — cost-model hooks the drivers
  use to charge virtual time for the accumulate and combine phases.
"""

from __future__ import annotations

from typing import Any, Generic, Iterable, Sequence, TypeVar

import numpy as np

from repro.errors import OperatorError

__all__ = ["ReduceScanOp", "state_equal"]

In = TypeVar("In")
State = TypeVar("State")
Out = TypeVar("Out")


class ReduceScanOp(Generic[In, State, Out]):
    """Base class for global-view reduction/scan operators."""

    #: Listing 7's ``param commutative``; assumed True when not overridden
    #: ("If it is undefined, it is assumed to be true by the compiler").
    commutative: bool = True

    #: True when ``combine`` applies independently per element of a 1-D
    #: NumPy array state, so the runtime may *segment* the state across
    #: ranks (ring / Rabenseifner / pipelined schedules).  Operators
    #: whose state is a whole object (mink, meanvar, ...) must leave
    #: this False.
    elementwise: bool = False

    #: Optional cost-model rate name for charging the accumulate phase
    #: (seconds/element); None disables accumulate charging.
    accum_rate: str | None = None

    #: Optional per-combine-call virtual-time charge (seconds).
    combine_seconds: float = 0.0

    # -- required ----------------------------------------------------------

    def ident(self) -> State:
        """Return a fresh identity state (the default constructor of the
        Chapel operator class)."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement ident()"
        )

    def accum(self, state: State, x: In) -> State:
        """Fold one input element into the state; return the state."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement accum()"
        )

    def combine(self, s1: State, s2: State) -> State:
        """Combine two states; ``s1`` covers the earlier run.  May mutate
        and return ``s1``; must not mutate ``s2``."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement combine()"
        )

    # -- optional hooks ------------------------------------------------------

    def pre_accum(self, state: State, x: In) -> State:
        """Called with the rank's *first* element before accumulation."""
        return state

    def post_accum(self, state: State, x: In) -> State:
        """Called with the rank's *last* element after accumulation."""
        return state

    def gen(self, state: State) -> Out:
        """Shared generate function; defaults to the state itself."""
        return state  # type: ignore[return-value]

    def red_gen(self, state: State) -> Out:
        """Generate the reduction result from the final state."""
        return self.gen(state)

    def scan_gen(self, state: State, x: In) -> Out:
        """Generate one scan output from a prefix state and the input at
        that position (the input lets e.g. ``counts`` emit per-octant
        rankings, Listing 6)."""
        return self.gen(state)

    # -- block fast paths ------------------------------------------------------

    def accum_block(self, state: State, values: Sequence[In] | np.ndarray) -> State:
        """Accumulate a whole local block; override to vectorize."""
        for x in values:
            state = self.accum(state, x)
        return state

    def scan_block(
        self, state: State, values: Sequence[In] | np.ndarray, *, exclusive: bool
    ) -> tuple[list[Out], State]:
        """Second phase of the scan on one rank: emit one output per
        element while re-accumulating.  Exclusive emits before
        accumulating (Listing 3 lines 12–13); inclusive after (the
        line-interchange noted under Listing 3).  Override to vectorize.
        """
        out: list[Out] = []
        if exclusive:
            for x in values:
                out.append(self.scan_gen(state, x))
                state = self.accum(state, x)
        else:
            for x in values:
                state = self.accum(state, x)
                out.append(self.scan_gen(state, x))
        return out, state

    # -- metadata ----------------------------------------------------------------

    def kernel_signature(self) -> tuple:
        """Hashable key under which the kernel tier caches this
        operator's compiled kernel (see :mod:`repro.core.kernels`).

        The default — the concrete class — is right for any operator
        whose block-path *structure* is determined by its type:
        parameterized instances (``MinKOp(3)`` vs ``MinKOp(5)``) share
        one kernel because kernels hold no per-instance state.
        Override when instances of one class need distinct kernels
        (``UfuncOp`` adds its ufunc)."""
        return (type(self),)

    @property
    def name(self) -> str:
        return type(self).__name__

    def state_eq(self, s1: State, s2: State) -> bool:
        """Equality of states (used by operator-law validation)."""
        return state_equal(s1, s2)

    def __repr__(self) -> str:
        kind = "commutative" if self.commutative else "non-commutative"
        return f"{self.name}({kind})"


def state_equal(a: Any, b: Any) -> bool:
    """Structural equality that tolerates NumPy arrays and containers."""
    if a is b:
        return True
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        if a_arr.shape != b_arr.shape or a_arr.dtype.kind != b_arr.dtype.kind:
            return False
        if a_arr.dtype.kind == "f":
            return bool(np.allclose(a_arr, b_arr, equal_nan=True))
        return bool(np.array_equal(a_arr, b_arr))
    if isinstance(a, float) and isinstance(b, float):
        if a == b or (np.isnan(a) and np.isnan(b)):
            return True
        # relative tolerance for large magnitudes, absolute for values
        # near zero (floating-point combines are associative only up to
        # rounding — e.g. Chan-style mean/variance merging)
        return abs(a - b) <= max(1e-12, 1e-12 * max(abs(a), abs(b)))
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return len(a) == len(b) and all(state_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(state_equal(v, b[k]) for k, v in a.items())
    if hasattr(a, "__dict__") and hasattr(b, "__dict__") and type(a) is type(b):
        return state_equal(vars(a), vars(b))
    if hasattr(type(a), "__slots__") and type(a) is type(b):
        slots = type(a).__slots__
        return all(
            state_equal(getattr(a, s), getattr(b, s)) for s in slots
        )
    try:
        return bool(a == b)
    except Exception as exc:  # pragma: no cover - defensive
        raise OperatorError(
            f"cannot compare states of types {type(a).__name__} and "
            f"{type(b).__name__}; override state_eq()"
        ) from exc
