"""Functional construction of global-view operators.

Not every operator deserves a class.  :func:`make_op` assembles a
:class:`~repro.core.operator.ReduceScanOp` from plain functions — the
closest Python analogue to RSMPI's "build up a library of operators"
workflow — and :func:`from_binary` wraps an ordinary binary function
(e.g. ``operator.add``) into a degenerate global-view operator whose
input, state and output types coincide, which is exactly the case where
"the global-view abstraction reduces to the local-view abstraction"
(paper §3).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.core.operator import ReduceScanOp
from repro.errors import OperatorError

__all__ = ["make_op", "from_binary"]


class _FunctionalOp(ReduceScanOp):
    """A ReduceScanOp assembled from user-supplied callables."""

    def __init__(
        self,
        *,
        ident: Callable[[], Any],
        accum: Callable[[Any, Any], Any],
        combine: Callable[[Any, Any], Any],
        pre_accum: Callable[[Any, Any], Any] | None = None,
        post_accum: Callable[[Any, Any], Any] | None = None,
        gen: Callable[[Any], Any] | None = None,
        red_gen: Callable[[Any], Any] | None = None,
        scan_gen: Callable[[Any, Any], Any] | None = None,
        accum_block: Callable[[Any, Any], Any] | None = None,
        commutative: bool = True,
        name: str = "op",
        accum_rate: str | None = None,
        combine_seconds: float = 0.0,
    ):
        self._ident = ident
        self._accum = accum
        self._combine = combine
        self._pre_accum = pre_accum
        self._post_accum = post_accum
        self._gen = gen
        self._red_gen = red_gen
        self._scan_gen = scan_gen
        self._accum_block = accum_block
        self.commutative = bool(commutative)
        self._name = name
        self.accum_rate = accum_rate
        self.combine_seconds = float(combine_seconds)

    # required
    def ident(self):
        return self._ident()

    def accum(self, state, x):
        return self._accum(state, x)

    def combine(self, s1, s2):
        return self._combine(s1, s2)

    # optional
    def pre_accum(self, state, x):
        return self._pre_accum(state, x) if self._pre_accum else state

    def post_accum(self, state, x):
        return self._post_accum(state, x) if self._post_accum else state

    def gen(self, state):
        return self._gen(state) if self._gen else state

    def red_gen(self, state):
        return self._red_gen(state) if self._red_gen else self.gen(state)

    def scan_gen(self, state, x):
        return self._scan_gen(state, x) if self._scan_gen else self.gen(state)

    def accum_block(self, state, values):
        if self._accum_block is not None:
            return self._accum_block(state, values)
        return super().accum_block(state, values)

    @property
    def name(self) -> str:
        return self._name


def make_op(
    *,
    ident: Callable[[], Any],
    accum: Callable[[Any, Any], Any],
    combine: Callable[[Any, Any], Any],
    pre_accum: Callable[[Any, Any], Any] | None = None,
    post_accum: Callable[[Any, Any], Any] | None = None,
    gen: Callable[[Any], Any] | None = None,
    red_gen: Callable[[Any], Any] | None = None,
    scan_gen: Callable[[Any, Any], Any] | None = None,
    accum_block: Callable[[Any, Any], Any] | None = None,
    commutative: bool = True,
    name: str = "op",
    accum_rate: str | None = None,
    combine_seconds: float = 0.0,
) -> ReduceScanOp:
    """Build a global-view operator from plain functions.

    Required: ``ident``, ``accum``, ``combine`` (the paper's minimum:
    "Every class that defines an operator ... must define at least the
    three functions accum, combine, and gen" — ``gen`` defaults to the
    identity mapping on states here, matching operators whose state *is*
    their output).
    """
    for fname, f in (("ident", ident), ("accum", accum), ("combine", combine)):
        if not callable(f):
            raise OperatorError(f"make_op: {fname} must be callable, got {f!r}")
    return _FunctionalOp(
        ident=ident,
        accum=accum,
        combine=combine,
        pre_accum=pre_accum,
        post_accum=post_accum,
        gen=gen,
        red_gen=red_gen,
        scan_gen=scan_gen,
        accum_block=accum_block,
        commutative=commutative,
        name=name,
        accum_rate=accum_rate,
        combine_seconds=combine_seconds,
    )


def from_binary(
    fn: Callable[[Any, Any], Any],
    identity: Callable[[], Any],
    *,
    commutative: bool = True,
    name: str = "binary_op",
    vectorized: bool = False,
) -> ReduceScanOp:
    """Wrap a plain binary function into a degenerate global-view operator
    (input type == state type == output type).

    With ``vectorized=True`` the accumulate phase folds a NumPy block with
    ``fn.reduce`` if available (NumPy ufuncs), else pairwise over the
    block.
    """

    def accum_block(state, values):
        if len(values) == 0:
            return state
        if vectorized and isinstance(values, np.ndarray):
            reducer = getattr(fn, "reduce", None)
            block = reducer(values) if reducer is not None else _fold(values)
            return fn(state, block)
        for x in values:
            state = fn(state, x)
        return state

    def _fold(values: Sequence[Any]):
        acc = values[0]
        for x in values[1:]:
            acc = fn(acc, x)
        return acc

    return make_op(
        ident=identity,
        accum=fn,
        combine=fn,
        accum_block=accum_block,
        commutative=commutative,
        name=name,
    )
