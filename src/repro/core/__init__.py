"""The paper's primary contribution: global-view user-defined
reductions and scans (Section 3)."""

from repro.core.chapel import ChapelOp, ChapelOpAdapter
from repro.core.functional import from_binary, make_op
from repro.core.fusion import (
    PendingReduction,
    ReductionBucket,
    global_reduce_many,
)
from repro.core.kernels import (
    ElementwiseKernel,
    FallbackKernel,
    Kernel,
    KernelCache,
    SegmentedKernel,
    batched_accumulate,
    compile_kernel,
)
from repro.core.operator import ReduceScanOp, state_equal
from repro.core.reduce import accumulate_local, accumulate_local_many, global_reduce
from repro.core.scan import global_scan, global_xscan
from repro.core.validation import (
    check_operator,
    sequential_reduce,
    sequential_scan,
)

__all__ = [
    "ReduceScanOp",
    "ChapelOp",
    "ChapelOpAdapter",
    "state_equal",
    "make_op",
    "from_binary",
    "global_reduce",
    "global_reduce_many",
    "ReductionBucket",
    "PendingReduction",
    "global_scan",
    "global_xscan",
    "accumulate_local",
    "accumulate_local_many",
    "Kernel",
    "ElementwiseKernel",
    "SegmentedKernel",
    "FallbackKernel",
    "KernelCache",
    "compile_kernel",
    "batched_accumulate",
    "check_operator",
    "sequential_reduce",
    "sequential_scan",
]
