"""Self-healing policies for the persistent engine.

Two pieces live here, both pure policy (mechanism stays in
:mod:`repro.engine.core`):

:class:`RetryPolicy`
    Per-submit: how many attempts a job gets, how long to back off
    between them (exponential with deterministic seeded jitter), which
    errors are worth retrying, and how the fault plan is re-derived per
    attempt.  Every retry runs in a **fresh**
    :class:`~repro.runtime.world.JobWorld` — new clocks, membership,
    abort flag, context id — so a successful attempt is bit-identical
    to a fault-free standalone run of the same function.

:class:`SupervisorConfig` / :class:`Supervisor`
    Engine-wide: the background thread that re-admits retry-scheduled
    jobs when their backoff elapses, reaps jobs stuck past their
    deadline (escalation above the per-collective hang watchdog), and
    probes quarantined pool ranks to revive them.  The engine starts
    one by default; ``Engine(..., supervisor=False)`` opts out, in
    which case retries re-admit inline (no backoff) and quarantine is
    disabled.

Determinism contract: backoff jitter is drawn from a
``random.Random`` seeded with a string of ``(policy seed, job id,
attempt)``, so a replayed workload schedules retries at identical
offsets; fault-plan reseeding (:func:`repro.faults.plan.reseed`) is
seed arithmetic.  Nothing in this module consumes ambient entropy.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.errors import SpmdError

__all__ = ["RetryPolicy", "SupervisorConfig", "Supervisor"]


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) the engine re-runs a failed job.

    Attributes
    ----------
    max_attempts:
        Total attempts, *including* the first.  ``max_attempts=1``
        disables retries; 3 means "two retries".
    backoff_base:
        Backoff before the first retry, in wall-clock seconds.
    backoff_factor:
        Multiplier per subsequent retry (exponential backoff).
    backoff_max:
        Cap on any single backoff interval.
    jitter:
        Fractional jitter: each backoff is scaled by a factor drawn
        uniformly from ``[1 - jitter, 1 + jitter]`` — deterministically,
        from ``(seed, job_id, attempt)`` — so gangs of retrying jobs
        de-synchronize without sacrificing replayability.
    seed:
        Root seed for the jitter stream.
    retry_on:
        Exception classes worth retrying (checked with isinstance
        against the job's terminal error).  Defaults to
        :class:`~repro.errors.SpmdError` only — timeouts and
        cancellations are not transient.
    reseed_faults:
        When True (default), a static :class:`~repro.faults.FaultPlan`
        submitted with the job is re-derived per attempt via
        :func:`repro.faults.plan.reseed` — fail-stops do not recur, so
        a deterministic crash becomes a transient one.  Callable plan
        sources (``attempt -> plan``) are always consulted per attempt
        and ignore this flag.
    """

    max_attempts: int = 3
    backoff_base: float = 0.01
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.1
    seed: int = 0
    retry_on: tuple[type[BaseException], ...] = (SpmdError,)
    reseed_faults: bool = True

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff intervals must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if not self.retry_on:
            raise ValueError("retry_on must name at least one exception type")

    def should_retry(self, attempt: int, error: BaseException) -> bool:
        """True when failed attempt number ``attempt`` (1-based) earns
        another run under this policy."""
        return attempt < self.max_attempts and isinstance(
            error, tuple(self.retry_on)
        )

    def backoff_seconds(self, attempt: int, job_id: int) -> float:
        """Backoff after failed attempt ``attempt`` (1-based), jittered
        deterministically per ``(seed, job_id, attempt)``."""
        delay = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter > 0.0 and delay > 0.0:
            rng = random.Random(f"retry:{self.seed}:{job_id}:{attempt}")
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(delay, 0.0)

    def fault_plan_for(self, source, attempt_index: int):
        """The fault plan for attempt ``attempt_index`` (0 = first).

        ``source`` is whatever was passed to ``submit(fault_plan=...)``:
        None, a static plan, or a callable ``attempt -> plan``.
        """
        if source is None:
            return None
        if callable(source):
            return source(attempt_index)
        if attempt_index == 0 or not self.reseed_faults:
            return source
        from repro.faults.plan import reseed

        return reseed(source, attempt_index)


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning knobs for the engine's supervisor thread.

    Attributes
    ----------
    interval:
        Seconds between supervisor ticks (retry re-admission, reaping,
        probing all happen on this cadence).
    reap:
        Enable the stuck-job reaper: a running job that exceeds its
        submit-time ``timeout`` is aborted and unwound *server-side*,
        even if no client is blocked in ``result()`` — the escalation
        that guarantees the pool can never be wedged by an abandoned
        job.  Pending jobs past their deadline are failed in place.
    reap_grace:
        Extra seconds past a job's deadline before the reaper fires,
        leaving the client-side timeout (which produces the same
        diagnosis) the first shot.
    quarantine:
        Enable rank quarantine: world ranks a finished job reports dead
        are withheld from gang assembly until a probe revives them.
    probe_after:
        Seconds a rank stays quarantined before the supervisor probes
        it (a failed probe re-arms this delay).
    probe_timeout:
        Wall-clock budget for one probe job.
    capacity_floor:
        Fraction of the pool that must be schedulable for the engine to
        report "ok"; below it :meth:`~repro.engine.Engine.status`
        returns "degraded" and non-``allow_shrink`` jobs that no longer
        fit raise :class:`~repro.errors.EngineDegraded` (non-blocking
        submits) instead of queueing forever.
    """

    interval: float = 0.05
    reap: bool = True
    reap_grace: float = 1.0
    quarantine: bool = True
    probe_after: float = 0.25
    probe_timeout: float = 5.0
    capacity_floor: float = 0.75

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.probe_after < 0 or self.probe_timeout <= 0:
            raise ValueError("probe_after must be >= 0, probe_timeout > 0")
        if self.reap_grace < 0:
            raise ValueError(f"reap_grace must be >= 0, got {self.reap_grace}")
        if not 0.0 <= self.capacity_floor <= 1.0:
            raise ValueError(
                f"capacity_floor must be in [0, 1], got {self.capacity_floor}"
            )


class Supervisor:
    """The engine's health-loop thread.

    Pure driver: each tick calls back into the engine's supervision
    entry points (``_admit_due_retries``, ``_reap_stuck_jobs``,
    ``_probe_quarantined``, ``_probe_backend``), which own all locking.  A tick that raises
    is logged-and-survived — a supervisor that silently dies would turn
    every retrying job into a hang.
    """

    def __init__(self, engine, config: SupervisorConfig):
        self._engine = engine
        self.config = config
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Exceptions swallowed by the tick loop (diagnostics).
        self.tick_errors: list[BaseException] = []

    def start(self) -> "Supervisor":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="engine-supervisor", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> bool:
        """Stop the thread; True when it joined within ``timeout``."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
            alive = thread.is_alive()
            self._thread = None
            return not alive
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval):
            self.tick()
        # Final tick on shutdown so retries scheduled moments before
        # close are flushed (cancelled) rather than stranded.
        self.tick()

    def tick(self) -> None:
        """One supervision pass (also callable synchronously in tests)."""
        eng = self._engine
        for step in (
            eng._admit_due_retries,
            eng._reap_stuck_jobs,
            eng._probe_quarantined,
            eng._probe_backend,
        ):
            try:
                step()
            except Exception as exc:  # pragma: no cover - defensive
                if len(self.tick_errors) < 32:
                    self.tick_errors.append(exc)
