"""Persistent multi-tenant execution engine for SPMD jobs.

The paper's global-view abstraction assumes a long-lived SPMD execution
context; this package provides one.  An :class:`Engine` owns a single
persistent :class:`~repro.runtime.world.World` and one resident thread
per pool rank; clients submit SPMD functions as **jobs** — through
:meth:`Engine.submit` directly or a per-client :class:`Session` — and
get :class:`JobHandle`\\ s back.  Jobs run over isolated communicator
contexts with per-job virtual-clock epochs, so every job's results,
traces and makespan are bit-identical to a standalone
:func:`repro.runtime.spmd_run` of the same function, while the engine
amortizes thread churn and schedule tuning across jobs.

Quick tour
----------
>>> from repro.engine import Engine
>>> from repro import global_reduce
>>> from repro.ops import SumOp
>>> def program(comm):
...     return global_reduce(comm, SumOp(), [comm.rank + 1.0])
>>> with Engine(8) as engine:
...     session = engine.session()
...     handles = [session.submit(program, nprocs=4) for _ in range(10)]
...     results = [h.result() for h in handles]
>>> results[0].returns[0]
10.0

``spmd_run`` itself is now a thin compat shim over a transient engine,
so existing callers get the same machinery without code changes.

The engine self-heals: a supervisor thread quarantines and revives
pool ranks that die inside jobs, reaps stuck jobs, and re-runs jobs
submitted with a :class:`RetryPolicy` until they succeed (bit-identical
to a fault-free run) or exhaust their attempts.  See ``docs/engine.md``
for lifecycle, isolation model, backpressure semantics, the schedule
cache and the self-healing contract.
"""

from repro.engine.core import Engine, Session
from repro.engine.job import JobHandle
from repro.engine.resilience import RetryPolicy, Supervisor, SupervisorConfig

__all__ = [
    "Engine",
    "Session",
    "JobHandle",
    "RetryPolicy",
    "Supervisor",
    "SupervisorConfig",
]
