"""``python -m repro serve`` — multi-tenant engine demo.

Spins up one persistent :class:`~repro.engine.Engine` and hammers it
from N concurrent client threads, each with its own
:class:`~repro.engine.Session`.  Every client submits a stream of small
reduction/scan jobs (the paper's bread-and-butter shapes); jobs smaller
than the pool run concurrently, so the demo exercises multiplexing,
per-job isolation and the cross-job schedule cache in one go.  Prints
per-client and aggregate throughput plus the engine's counters.

The engine runs with telemetry enabled, so the demo doubles as the
observability tour:

* ``--metrics-port P`` serves Prometheus text on
  ``http://127.0.0.1:P/metrics`` and the dashboard frame on
  ``/snapshot.json`` (``python -m repro top`` reads the latter);
* ``--linger S`` keeps the endpoint up S seconds after the workload so
  a scraper (or CI curl) can read the final state;
* ``--snapshot-out PATH`` dumps the periodic snapshot ring plus the
  per-job lifecycle records as JSONL;
* ``--trace-out PATH`` writes the per-rank busy timeline as a
  Chrome/Perfetto trace of the whole engine session.

``--chaos`` adds a chaos tenant beside the healthy clients: a session
whose jobs run under :func:`repro.faults.transient_plan` fault plans
(per-attempt fail-stops and lossy links) with a
:class:`~repro.engine.resilience.RetryPolicy`, exercising the engine's
self-healing layer — retries, rank quarantine, probe-and-revive,
degraded-capacity scheduling — live, with the quarantine/degraded
state printed in the summary (and visible in ``python -m repro top``).
"""

from __future__ import annotations

import argparse
import threading
import time

import numpy as np

__all__ = ["run_serve"]


def _make_jobs(payload: int):
    """The client workload: alternating reduce and scan jobs."""
    from repro import global_reduce, global_scan
    from repro.ops import SumOp

    def reduce_job(comm):
        local = np.arange(
            comm.rank, payload * comm.size, comm.size, dtype=np.float64
        )
        return global_reduce(comm, SumOp(), local)

    def scan_job(comm):
        local = np.arange(
            comm.rank, payload * comm.size, comm.size, dtype=np.float64
        )
        return global_scan(comm, SumOp(), local)

    return (reduce_job, scan_job)


def _make_chaos_job(payload: int):
    """The chaos tenant's workload: a reduction over the *non-resilient*
    allreduce path, so an injected fail-stop fails the attempt (instead
    of being absorbed by the restartable driver) and the engine's
    RetryPolicy has to re-run it."""
    from repro.core.reduce import accumulate_local, wire_op
    from repro.ops import SumOp

    def chaos_job(comm):
        op = SumOp()
        local = np.arange(
            comm.rank, payload * comm.size, comm.size, dtype=np.float64
        )
        acc = accumulate_local(comm, op, local)
        return op.red_gen(comm.allreduce(acc, wire_op(op)))

    return chaos_job


def run_serve(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve a stream of SPMD jobs from concurrent clients "
        "over one persistent engine.",
    )
    parser.add_argument(
        "--ranks", type=int, default=8, metavar="P",
        help="resident pool size (default: 8)",
    )
    parser.add_argument(
        "--clients", type=int, default=4, metavar="N",
        help="concurrent client threads (default: 4)",
    )
    parser.add_argument(
        "--jobs-per-client", type=int, default=25, metavar="K",
        help="jobs each client submits (default: 25)",
    )
    parser.add_argument(
        "--job-ranks", type=int, default=None, metavar="G",
        help="ranks per job (default: half the pool, so jobs overlap)",
    )
    parser.add_argument(
        "--payload", type=int, default=64, metavar="ELEMS",
        help="float64 elements per rank per job (default: 64)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=128, metavar="D",
        help="admission-control queue bound (default: 128)",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=None, metavar="P",
        help="serve /metrics (Prometheus) and /snapshot.json on this "
        "port while the demo runs (0 = pick an ephemeral port)",
    )
    parser.add_argument(
        "--linger", type=float, default=0.0, metavar="S",
        help="keep the metrics endpoint alive this many seconds after "
        "the workload finishes (default: 0)",
    )
    parser.add_argument(
        "--snapshot-interval", type=float, default=0.25, metavar="S",
        help="periodic snapshot-ring sampling interval (default: 0.25)",
    )
    parser.add_argument(
        "--snapshot-out", default=None, metavar="PATH",
        help="write the snapshot ring + per-job lifecycle records "
        "as JSONL to PATH",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the per-rank busy timeline as a Chrome/Perfetto "
        "trace to PATH",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="run a chaos tenant alongside the healthy clients: jobs "
        "under transient fault plans with a RetryPolicy (self-healing "
        "demo)",
    )
    parser.add_argument(
        "--chaos-jobs", type=int, default=16, metavar="K",
        help="jobs the chaos tenant submits (default: 16)",
    )
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="execution backend: 'thread' (bit-identity oracle) or "
        "'process' (accumulate offload to forked rank workers over "
        "shared memory; see docs/backends.md)",
    )
    ns = parser.parse_args(argv)

    from repro.engine import Engine
    from repro.obs.telemetry import EngineTelemetry, SnapshotRing

    job_ranks = ns.job_ranks if ns.job_ranks is not None else max(
        1, ns.ranks // 2
    )
    if job_ranks > ns.ranks:
        parser.error(f"--job-ranks {job_ranks} exceeds pool size {ns.ranks}")
    jobs = _make_jobs(ns.payload)

    print(
        f"engine serve: pool={ns.ranks} ranks, {ns.clients} clients x "
        f"{ns.jobs_per_client} jobs ({job_ranks} ranks, "
        f"{ns.payload} float64/rank each)"
    )

    client_stats: list[dict] = [None] * ns.clients  # type: ignore[list-item]

    def client(idx: int, engine) -> None:
        with engine.session(label=f"client-{idx}") as session:
            t0 = time.perf_counter()
            handles = [
                session.submit(
                    jobs[k % len(jobs)],
                    nprocs=job_ranks,
                    label=f"client-{idx}-job-{k}",
                )
                for k in range(ns.jobs_per_client)
            ]
            results = [h.result() for h in handles]
            dt = time.perf_counter() - t0
        client_stats[idx] = {
            "jobs": len(results),
            "seconds": dt,
            "sim_time": sum(r.time for r in results),
        }

    chaos_stats: dict = {}

    def chaos_client(engine) -> None:
        from repro.engine.resilience import RetryPolicy
        from repro.errors import SpmdError
        from repro.faults import transient_plan

        chaos_job = _make_chaos_job(ns.payload)
        policy = RetryPolicy(max_attempts=8, backoff_base=0.002)
        succeeded = retried = failed = 0
        with engine.session(label="chaos-tenant") as session:
            handles = [
                session.submit(
                    chaos_job,
                    nprocs=job_ranks,
                    fault_plan=transient_plan(
                        k, job_ranks, failstop_rate=0.6
                    ),
                    retry_policy=policy,
                    timeout=60.0,
                    label=f"chaos-{k}",
                )
                for k in range(ns.chaos_jobs)
            ]
            for h in handles:
                try:
                    h.result()
                    succeeded += 1
                except SpmdError:
                    failed += 1
                retried += h.attempt - 1
        chaos_stats.update(
            jobs=ns.chaos_jobs, succeeded=succeeded,
            failed=failed, retries=retried,
        )

    telemetry = EngineTelemetry(ns.ranks)
    ring = SnapshotRing(telemetry, interval=ns.snapshot_interval)
    server = None
    if ns.metrics_port is not None:
        from repro.engine.metrics_http import MetricsServer

        server = MetricsServer(telemetry, port=ns.metrics_port)
        print(f"metrics: {server.url}/metrics  (snapshot: /snapshot.json)")

    with Engine(
        ns.ranks, queue_depth=ns.queue_depth, telemetry=telemetry,
        backend=ns.backend,
    ) as engine:
        threads = [
            threading.Thread(target=client, args=(i, engine), daemon=True)
            for i in range(ns.clients)
        ]
        if ns.chaos:
            threads.append(
                threading.Thread(
                    target=chaos_client, args=(engine,), daemon=True
                )
            )
        t0 = time.perf_counter()
        ring.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        if ns.linger > 0:
            print(f"(lingering {ns.linger:g}s for scrapes ...)")
            time.sleep(ns.linger)
        ring.stop()
        stats = engine.stats()
        if server is not None:
            server.close()

    total_jobs = sum(c["jobs"] for c in client_stats)
    print()
    for i, c in enumerate(client_stats):
        print(
            f"  client {i}: {c['jobs']} jobs in {c['seconds']:.3f} s "
            f"({c['jobs'] / c['seconds']:.1f} jobs/s)"
        )
    cache = stats["schedule_cache"]
    print(
        f"\naggregate: {total_jobs} jobs in {wall:.3f} s "
        f"({total_jobs / wall:.1f} jobs/s)"
    )
    print(
        f"engine: peak inflight {stats['peak_inflight']}, "
        f"completed {stats['completed']}, failed {stats['failed']}, "
        f"cancelled {stats['cancelled']}, rejected {stats['rejected']}"
    )
    print(
        f"health: status {stats['status']}, effective capacity "
        f"{stats['effective_capacity']}/{stats['nprocs']} "
        f"({len(stats['quarantined_ranks'])} quarantined), "
        f"{stats['retried']} retries, {stats['quarantines']} quarantines, "
        f"{stats['revivals']} revivals, {stats['reaped']} reaped"
    )
    if ns.chaos and chaos_stats:
        print(
            f"chaos tenant: {chaos_stats['succeeded']}/"
            f"{chaos_stats['jobs']} jobs eventually succeeded "
            f"({chaos_stats['retries']} retries, "
            f"{chaos_stats['failed']} exhausted)"
        )
    print(
        f"schedule cache: {cache['hits']} hits / {cache['misses']} misses "
        f"(hit rate {cache['hit_rate']:.3f}); "
        f"leaked messages swept: {stats['leaked_messages_drained']}"
    )
    kcache = stats["kernel_cache"]
    print(
        f"kernel cache: {kcache['hits']} hits / {kcache['misses']} misses "
        f"(hit rate {kcache['hit_rate']:.3f}, {kcache['entries']} entries)"
    )
    ipc = stats.get("ipc")
    if ipc is not None:
        offloads = ipc["shm_hits"] + ipc["pickle_fallbacks"]
        cov = ipc["shm_hits"] / offloads if offloads else 0.0
        print(
            f"backend: {stats['backend']}; ipc {ipc['frames']} frames, "
            f"{ipc['bytes']} bytes, {ipc['shm_hits']} shm hits / "
            f"{ipc['pickle_fallbacks']} pickle fallbacks "
            f"(zero-copy {cov:.0%}), {ipc['worker_restarts']} restarts"
        )
    else:
        print(f"backend: {stats['backend']}")
    latency = telemetry.latency_summary()

    def _us(value):
        return "-" if value is None else f"{value * 1e6:.0f}us"

    for name, key in (("queue wait", "queue_wait_s"), ("e2e", "e2e_s")):
        s = latency[key]
        print(
            f"latency {name}: p50 {_us(s['p50'])}, p95 {_us(s['p95'])}, "
            f"p99 {_us(s['p99'])} over {s['count']} jobs"
        )
    if ns.snapshot_out:
        n_lines = ring.write(ns.snapshot_out)
        print(f"telemetry snapshots written to {ns.snapshot_out} "
              f"({n_lines} JSONL records)")
    if ns.trace_out:
        from repro.analysis import write_engine_session_trace

        write_engine_session_trace(telemetry, ns.trace_out)
        print(f"engine-session trace written to {ns.trace_out} "
              "(open in Perfetto)")
    # Healthy clients must all complete; the chaos tenant's exhausted-
    # retry failures (if any) are its own lane, reported above.
    chaos_ok = chaos_stats.get("succeeded", 0) if ns.chaos else 0
    chaos_failed = chaos_stats.get("failed", 0) if ns.chaos else 0
    ok = (
        stats["completed"] == total_jobs + chaos_ok
        and stats["failed"] == chaos_failed
        and total_jobs == ns.clients * ns.jobs_per_client
    )
    print("serve demo OK" if ok else "serve demo FAILED")
    return 0 if ok else 1
