"""The persistent multi-tenant engine: one world, resident rank threads,
many concurrent jobs.

Where :func:`repro.runtime.spmd_run` historically built a fresh
:class:`~repro.runtime.world.World` and spawned ``nprocs`` threads per
call, an :class:`Engine` pays those costs once: it owns one world (the
mailboxes, the context-id allocator, the cross-job schedule cache) and
one resident thread per pool rank.  Clients submit SPMD functions
through :meth:`Engine.submit` or a :class:`Session` and get back
:class:`~repro.engine.job.JobHandle`\\ s.

Scheduling
----------
Jobs are gang-scheduled FIFO: a job asking for ``k <= pool`` ranks waits
until ``k`` pool ranks are free, then runs on the lowest-numbered free
ranks.  Jobs smaller than the pool run genuinely concurrently.  The
queue is strict FIFO (a large job at the head blocks later small ones),
which trades some utilization for no starvation and a deterministic
admission order.

Isolation
---------
Each dispatched job gets a :class:`~repro.runtime.world.JobWorld`: fresh
virtual clocks, traces, membership (failure detector + watchdog), abort
flag, tracer capture and fault injector, plus a world-unique base
context id so two jobs' message tags can never match even while
interleaved on the same mailboxes.  Results are **bit-identical** to a
standalone ``spmd_run`` of the same function: returns, per-rank virtual
times, message counts and makespan — independent of where in the pool
the job landed (costs are rank-uniform and everything user-visible is
labeled with group ranks).

Admission control
-----------------
``queue_depth`` bounds how many jobs may wait; a full queue blocks
:meth:`Engine.submit` (backpressure) or raises
:class:`~repro.errors.EngineSaturated` for non-blocking submits.
``max_inflight`` optionally caps concurrently *running* jobs below what
free ranks would allow.  :meth:`Engine.drain` waits for quiescence;
:meth:`Engine.shutdown` closes admission and either drains or aborts.

Self-healing
------------
A :class:`~repro.engine.resilience.Supervisor` thread (on by default)
closes the loop between job outcomes and pool health: ranks a finished
job reports dead are **quarantined** (the gang scheduler skips them)
and periodically probed back to life; jobs submitted with a
:class:`~repro.engine.resilience.RetryPolicy` that fail with a
retryable error are re-run on a fresh
:class:`~repro.runtime.world.JobWorld` after a deterministic backoff;
jobs stuck past their deadline are reaped server-side.  Admission
control tracks **effective capacity** (pool minus quarantined): a job
that no longer fits raises :class:`~repro.errors.EngineDegraded` (or
waits, when blocking) unless submitted with ``allow_shrink=True``, in
which case it is gang-assembled onto the ranks that remain.  See
``docs/engine.md`` ("Self-healing").
"""

from __future__ import annotations

import heapq
import logging
import queue
import threading
import time
from collections import deque
from typing import Any, Callable, Sequence

from repro.errors import (
    CommunicatorError,
    EngineClosed,
    EngineDegraded,
    EngineSaturated,
    JobCancelled,
    RankFailStop,
    RuntimeAbort,
    SpmdError,
    SpmdTimeout,
)
from repro.obs.tracer import active_tracer
from repro.obs.telemetry import NULL_ENGINE_TELEMETRY, EngineTelemetry
from repro.runtime.costmodel import CostModel
from repro.runtime.executor import SpmdResult
from repro.runtime.world import World

from repro.engine.job import JobHandle, _Job
from repro.engine.resilience import RetryPolicy, Supervisor, SupervisorConfig

__all__ = ["Engine", "Session"]

logger = logging.getLogger("repro.engine")


def _probe_fn(comm):
    """Supervisor health probe: one self-send/recv round trip through
    the rank's own mailbox — the minimal proof that the rank's worker
    thread, mailbox and clock plumbing are serviceable again."""
    token = ("engine-probe", comm.rank)
    comm.send(token, comm.rank, tag=0)
    echo = comm.recv(source=comm.rank, tag=0)
    return "ok" if echo == token else "bad"


class Engine:
    """A resident rank pool serving many SPMD jobs over one world.

    ``telemetry`` enables the service-level observability layer
    (:mod:`repro.obs.telemetry`): ``True`` builds a fresh
    :class:`~repro.obs.telemetry.EngineTelemetry`, or pass a
    preconfigured instance; the default (off) keeps the submit/schedule
    hot path allocation-free (the same guarantee as disabled tracing).

    ``supervisor`` controls the self-healing layer: ``True`` (default)
    runs a :class:`~repro.engine.resilience.Supervisor` thread with
    default :class:`~repro.engine.resilience.SupervisorConfig`; pass a
    config to tune it, or ``False`` to disable (retries then re-admit
    inline with no backoff, and quarantine/reaping are off).

    ``backend`` selects the execution backend (see ``docs/backends.md``):
    ``"thread"`` (default) folds accumulate phases in-process — the
    bit-identity oracle; ``"process"`` offloads them to a
    :class:`~repro.runtime.procworld.ProcPool` of forked rank workers
    over shared-memory rings, byte-identical by contract and enforced
    by the backend identity grid.  ``backend_options`` forwards keyword
    arguments (``ring_bytes``, ``min_offload_bytes``) to the pool.

    ``topology`` installs a :class:`repro.runtime.fabric.Topology` on
    the pool's world (flat by default — bit-identical to the plain cost
    model).  ``placement`` selects gang placement: ``"locality"``
    (default) packs gangs into as few nodes/racks as the fabric allows,
    ``"lowest"`` forces the historical lowest-free-rank policy; on the
    flat topology both are identical.  See ``docs/topology.md``.
    """

    #: Default wall-clock budget for joining the pool's worker threads
    #: at :meth:`shutdown` (previously a hardcoded, undocumented 5.0 s
    #: inside shutdown itself).  Override per call via ``join_timeout``.
    DEFAULT_JOIN_TIMEOUT = 5.0

    def __init__(
        self,
        nprocs: int,
        *,
        cost_model: CostModel | None = None,
        queue_depth: int = 128,
        max_inflight: int | None = None,
        telemetry: "bool | EngineTelemetry | None" = False,
        supervisor: "bool | SupervisorConfig | None" = True,
        backend: str = "thread",
        backend_options: dict | None = None,
        topology: Any | None = None,
        placement: str = "locality",
    ):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        if placement not in ("locality", "lowest"):
            raise ValueError(
                f"placement must be 'locality' or 'lowest', got {placement!r}"
            )
        if telemetry is True:
            telemetry = EngineTelemetry(nprocs)
        elif not telemetry:
            telemetry = NULL_ENGINE_TELEMETRY
        self._telemetry = telemetry
        telemetry.bind(self)
        # The shared world validates nprocs >= 1 before any thread starts.
        self._world = World(nprocs, cost_model, topology=topology)
        self._placement = placement
        self._backend = backend
        if backend == "process":
            # Fork the rank workers *before* the rank threads start:
            # forking a single-threaded parent cannot inherit a lock
            # held mid-acquire by another thread.
            from repro.runtime.procworld import ProcPool

            self._proc_pool = ProcPool(nprocs, **(backend_options or {}))
            self._world.proc_pool = self._proc_pool
        else:
            self._proc_pool = None
        self._nprocs = nprocs
        self._queue_depth = queue_depth
        self._max_inflight = max_inflight
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._pending: deque[_Job] = deque()
        self._running: set[_Job] = set()
        self._free: set[int] = set(range(nprocs))
        self._inflight = 0
        self._closed = False
        self._joined = False
        self._next_job_id = 1
        # Counters (read via stats(); written under the engine lock).
        self._n_submitted = 0
        self._n_completed = 0
        self._n_failed = 0
        self._n_cancelled = 0
        self._n_rejected = 0
        self._peak_inflight = 0
        self._leaked_drained = 0
        # Self-healing state (all guarded by the engine lock).
        self._quarantined: set[int] = set()
        self._quarantined_at: dict[int, float] = {}
        self._retry_due: list[tuple[float, int, _Job]] = []  # backoff heap
        self._retry_seq = 0
        self._degraded = False
        self._join_clean = True
        self._n_retried = 0
        self._n_reaped = 0
        self._n_quarantines = 0
        self._n_revivals = 0
        self._n_shrunk = 0
        self._revival_swept = 0
        # Locality placement counters (guarded by the engine lock).
        self._gangs_placed = 0
        self._spread_sum = 0
        self._single_node_gangs = 0
        if supervisor is True:
            self._sup_cfg: SupervisorConfig | None = SupervisorConfig()
        elif supervisor is False or supervisor is None:
            self._sup_cfg = None
        else:
            self._sup_cfg = supervisor
        self._boxes: list[queue.SimpleQueue] = [
            queue.SimpleQueue() for _ in range(nprocs)
        ]
        self._threads = [
            threading.Thread(
                target=self._worker, args=(r,),
                name=f"engine-rank-{r}", daemon=True,
            )
            for r in range(nprocs)
        ]
        for t in self._threads:
            t.start()
        self._supervisor = (
            Supervisor(self, self._sup_cfg).start()
            if self._sup_cfg is not None else None
        )

    # -- introspection ------------------------------------------------------

    @property
    def nprocs(self) -> int:
        """Pool size: the maximum ``nprocs`` a job may request."""
        return self._nprocs

    @property
    def world(self) -> World:
        """The shared world (mailboxes, cid allocator, schedule cache)."""
        return self._world

    @property
    def backend(self) -> str:
        """The execution backend: ``"thread"`` or ``"process"``."""
        return self._backend

    @property
    def proc_pool(self):
        """The process backend's worker pool, or None (thread backend)."""
        return self._proc_pool

    @property
    def telemetry(self):
        """The engine's :class:`~repro.obs.telemetry.EngineTelemetry`,
        or the shared null object when telemetry is off (``.enabled``
        distinguishes them)."""
        return self._telemetry

    def set_telemetry(
        self, telemetry: "bool | EngineTelemetry | None"
    ) -> None:
        """Swap the telemetry layer on a live engine (``True`` builds a
        fresh :class:`EngineTelemetry`; ``False``/``None`` disables).

        Meant for quiescent points — attaching observability to a
        warmed-up engine, or starting a fresh measurement series after
        warm-up traffic (the throughput benchmark does the latter).
        Jobs admitted before the swap carry lifecycles stamped by the
        old telemetry but report their remaining transitions to the new
        one, so swapping with jobs pending or running skews both series.
        """
        if telemetry is True:
            telemetry = EngineTelemetry(self._nprocs)
        elif not telemetry:
            telemetry = NULL_ENGINE_TELEMETRY
        with self._lock:
            self._telemetry = telemetry
        telemetry.bind(self)

    def stats(self) -> dict[str, Any]:
        """Scheduler, cache and self-healing counters (a consistent
        snapshot).  ``effective_capacity`` is the pool minus quarantined
        ranks — what admission control actually schedules against."""
        with self._lock:
            effective = self._nprocs - len(self._quarantined)
            return {
                "nprocs": self._nprocs,
                "telemetry_enabled": self._telemetry.enabled,
                "pending": len(self._pending),
                "inflight": self._inflight,
                "free_ranks": len(self._free),
                "submitted": self._n_submitted,
                "completed": self._n_completed,
                "failed": self._n_failed,
                "cancelled": self._n_cancelled,
                "rejected": self._n_rejected,
                "peak_inflight": self._peak_inflight,
                "leaked_messages_drained": self._leaked_drained,
                "quarantined_ranks": sorted(self._quarantined),
                "effective_capacity": effective,
                "degraded": self._degraded,
                "retried": self._n_retried,
                "retry_backlog": len(self._retry_due),
                "reaped": self._n_reaped,
                "quarantines": self._n_quarantines,
                "revivals": self._n_revivals,
                "shrunk": self._n_shrunk,
                "revival_swept_messages": self._revival_swept,
                "status": (
                    "closed" if self._closed
                    else "degraded" if self._degraded else "ok"
                ),
                "schedule_cache": self._world.schedule_cache.stats(),
                "kernel_cache": self._world.kernel_cache.stats(),
                "backend": self._backend,
                "ipc": (
                    self._proc_pool.ipc_stats()
                    if self._proc_pool is not None else None
                ),
                "topology": self._world.topology.signature,
                "placement": {
                    "policy": self._placement,
                    "gangs_placed": self._gangs_placed,
                    "mean_gang_spread": (
                        self._spread_sum / self._gangs_placed
                        if self._gangs_placed else 0.0
                    ),
                    "single_node_gangs": self._single_node_gangs,
                },
                "fabric": self._world.topology.stats(),
            }

    def status(self) -> str:
        """Coarse health: ``"ok"``, ``"degraded"`` (schedulable capacity
        below the supervisor's ``capacity_floor``) or ``"closed"``."""
        with self._lock:
            if self._closed:
                return "closed"
            return "degraded" if self._degraded else "ok"

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        *,
        nprocs: int | None = None,
        args: Sequence[Any] = (),
        cost_model: CostModel | None = None,
        record_events: bool = False,
        isolate_payloads: bool = True,
        timeout: float | None = 300.0,
        tracer: Any | None = None,
        fault_plan: Any | None = None,
        label: str | None = None,
        session: str | None = None,
        block: bool = True,
        queue_timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        allow_shrink: bool = False,
    ) -> JobHandle:
        """Submit ``fn(comm, *args)`` as a job; returns a :class:`JobHandle`.

        Parameters mirror :func:`repro.runtime.spmd_run` (``nprocs``
        defaults to the pool size; it may be smaller, letting several
        jobs run concurrently).  ``timeout`` is the wall-clock budget
        :meth:`JobHandle.result` enforces.  Admission control:

        * ``block=True`` (default) waits while the pending queue is at
          ``queue_depth``, up to ``queue_timeout`` seconds (None = as
          long as it takes), then raises
          :class:`~repro.errors.EngineSaturated`;
        * ``block=False`` raises :class:`EngineSaturated` immediately on
          a full queue.

        Self-healing extensions:

        * ``fault_plan`` may be a static plan **or** a callable
          ``attempt -> plan`` (attempt 0 = first run) — the chaos-tenant
          contract (:func:`repro.faults.transient_plan`);
        * ``retry_policy`` re-runs retryable failures on a fresh
          :class:`~repro.runtime.world.JobWorld` per attempt (results of
          an eventual success are bit-identical to a fault-free run);
        * ``allow_shrink=True`` lets the scheduler gang-assemble the job
          onto fewer ranks when quarantine has shrunk the pool below
          ``nprocs``; without it such a job raises
          :class:`~repro.errors.EngineDegraded` (non-blocking) or waits
          for revival (blocking).

        ``session`` labels the job's telemetry lifecycle with the
        submitting client (set automatically by :meth:`Session.submit`).
        Raises :class:`~repro.errors.EngineClosed` after :meth:`shutdown`.
        """
        nprocs = self._nprocs if nprocs is None else nprocs
        tel = self._telemetry
        # Entry stamp *before* any backpressure wait, so queued-submitted
        # measures the admission stall.  The disabled branch stays
        # allocation-free: no lifecycle object, no instrument touches.
        t_submit = tel.now() if tel.enabled else 0.0
        if nprocs < 1:
            raise CommunicatorError(f"nprocs must be >= 1, got {nprocs}")
        if nprocs > self._nprocs:
            raise CommunicatorError(
                f"job requests {nprocs} ranks but the engine pool has "
                f"{self._nprocs}"
            )
        if tracer is None:
            # Same convention as spmd_run: an installed profiling session
            # captures jobs that don't bring their own tracer.  (The
            # profile CLI's rank override is applied by the spmd_run
            # shim, not here — an engine's pool size is fixed.)
            tracer = active_tracer()
        deadline = (
            None if queue_timeout is None
            else time.monotonic() + queue_timeout
        )
        # Resolve the first attempt's fault plan up front (the source —
        # possibly a callable — rides along on the job for retries).
        if retry_policy is not None:
            plan0 = retry_policy.fault_plan_for(fault_plan, 0)
        elif callable(fault_plan):
            plan0 = fault_plan(0)
        else:
            plan0 = fault_plan
        with self._cv:
            while True:
                if self._closed:
                    raise EngineClosed("engine is shut down")
                effective = self._nprocs - len(self._quarantined)
                degraded_block = (not allow_shrink) and nprocs > effective
                if (
                    not degraded_block
                    and len(self._pending) < self._queue_depth
                ):
                    break
                if degraded_block:
                    exc_type: type[EngineSaturated] = EngineDegraded
                    reason = (
                        f"job requests {nprocs} ranks but only {effective} "
                        f"of {self._nprocs} are schedulable "
                        f"({len(self._quarantined)} quarantined); resubmit "
                        f"with allow_shrink=True or back off until revival"
                    )
                else:
                    exc_type = EngineSaturated
                    reason = (
                        f"pending queue is at its depth limit "
                        f"({self._queue_depth})"
                    )
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                expired = remaining is not None and remaining <= 0.0
                if not block or expired:
                    self._n_rejected += 1
                    if tel.enabled:
                        tel.job_rejected(
                            label if label is not None
                            else getattr(fn, "__name__", None),
                            session, nprocs, t_submit,
                        )
                    if expired:
                        reason += f" (waited {queue_timeout} s)"
                    raise exc_type(reason)
                self._cv.wait(remaining)
            job = _Job(
                self._next_job_id, fn, args, nprocs,
                cost_model=cost_model,
                record_events=record_events,
                isolate_payloads=isolate_payloads,
                timeout=timeout,
                tracer=tracer,
                fault_plan=plan0,
                label=label,
            )
            job.fault_plan_source = fault_plan
            job.retry_policy = retry_policy
            job.allow_shrink = allow_shrink
            job.session = session
            job.admitted_at = time.perf_counter()
            self._next_job_id += 1
            self._n_submitted += 1
            self._pending.append(job)
            if tel.enabled:
                job.lifecycle = tel.job_admitted(
                    job.job_id, job.label, session, nprocs,
                    plan0 is not None, t_submit, len(self._pending),
                )
            self._dispatch_locked()
        return JobHandle(job, self)

    def session(self, label: str | None = None) -> "Session":
        """A client handle that tracks its own submissions."""
        return Session(self, label=label)

    # -- lifecycle ----------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no job is pending, running or awaiting retry;
        False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while self._pending or self._inflight or self._retry_due:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0.0:
                    return False
                self._cv.wait(remaining)
        return True

    def shutdown(
        self,
        *,
        drain: bool = True,
        timeout: float | None = None,
        join_timeout: float | None = None,
    ) -> bool:
        """Close admission and stop the pool.

        ``drain=True`` (graceful) lets queued, running and retrying jobs
        finish first (up to ``timeout`` seconds); ``drain=False``
        cancels every pending/retrying job and aborts every running one
        (their waiters see :class:`~repro.errors.JobCancelled`).

        ``join_timeout`` bounds how long the worker threads get to join
        afterwards; it defaults to ``timeout`` when that is set, else
        :data:`DEFAULT_JOIN_TIMEOUT` (5.0 s).  Threads that fail to
        join within the budget are logged as a warning and the call
        returns ``False`` — previously the 5 s cap was hardcoded and
        a wedged pool "shut down" silently.  Idempotent: repeat calls
        return the first call's join verdict.
        """
        with self._cv:
            already_joined = self._joined
            self._closed = True
            self._cv.notify_all()
        if already_joined:
            return self._join_clean
        if drain:
            self.drain(timeout)
        else:
            with self._cv:
                pending = list(self._pending)
                self._pending.clear()
                retrying = [entry[2] for entry in self._retry_due]
                self._retry_due.clear()
                running = list(self._running)
                for job in (*pending, *retrying):
                    if job.done_event.is_set():
                        continue
                    job.cancelled = True
                    job.status = "cancelled"
                    job.error = JobCancelled(
                        f"job {job.job_id} cancelled by engine shutdown"
                    )
                    self._n_cancelled += 1
                    if job.lifecycle is not None:
                        self._telemetry.job_done(
                            job.lifecycle, "cancelled", 0.0, job.members,
                            len(self._pending), self._inflight,
                            len(self._free),
                        )
                    job.done_event.set()
                self._cv.notify_all()
            for job in running:
                job.cancelled = True
                job.world.abort()
        if self._supervisor is not None:
            self._supervisor.stop()
        for box in self._boxes:
            box.put(None)
        if join_timeout is None:
            join_timeout = (
                self.DEFAULT_JOIN_TIMEOUT if timeout is None else timeout
            )
        join_deadline = time.monotonic() + join_timeout
        stragglers = []
        for t in self._threads:
            t.join(timeout=max(join_deadline - time.monotonic(), 0.0))
            if t.is_alive():
                stragglers.append(t.name)
        clean = not stragglers
        if stragglers:
            logger.warning(
                "engine shutdown: %d worker thread(s) failed to join "
                "within %.1f s: %s",
                len(stragglers), join_timeout, ", ".join(stragglers),
            )
        if self._proc_pool is not None:
            # After the rank threads: no thread can be mid-offload once
            # they are joined, and a straggler's in-flight request dies
            # with the worker (its MISS fallback path tolerates that).
            self._proc_pool.shutdown(timeout=join_timeout)
        self._joined = True
        self._join_clean = clean
        return clean

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    # -- scheduling internals -----------------------------------------------

    def _assemble_members_locked(self, k: int) -> tuple[int, ...]:
        """Pick ``k`` free ranks for a gang.  Caller holds the engine lock.

        On the flat topology (or ``placement="lowest"``) this is exactly
        the historical policy — the lowest-numbered free ranks — so
        pre-fabric engine behavior is untouched.  On a multi-tier fabric
        with ``placement="locality"`` the gang is packed to minimize the
        tiers its collectives must cross: the *tightest* single node
        that fits (best-fit keeps big holes open for big gangs), else
        the tightest single rack filled from its fullest nodes, else a
        global fill by descending node free count.  Members are returned
        sorted, which keeps each node's ranks a contiguous group-rank
        range — the layout the hierarchical collectives exploit.  All
        choices are deterministic (sorted sets, index tie-breaks), and
        job *results* never depend on placement, only virtual times.
        """
        free = sorted(self._free)
        topo = self._world.topology
        if self._placement != "locality" or topo.is_flat:
            return tuple(free[:k])
        by_node: dict[int, list[int]] = {}
        for r in free:
            by_node.setdefault(topo.node_of(r), []).append(r)
        # 1) Tightest single node that fits.
        fits = [(len(rs), n) for n, rs in by_node.items() if len(rs) >= k]
        if fits:
            _, node = min(fits)
            return tuple(by_node[node][:k])
        # 2) Tightest single rack, filled from its fullest nodes.
        by_rack: dict[int, list[int]] = {}
        for node, rs in by_node.items():
            by_rack.setdefault(topo.rack_of(rs[0]), []).append(node)
        rack_fits = [
            (sum(len(by_node[n]) for n in nodes), rack)
            for rack, nodes in by_rack.items()
            if sum(len(by_node[n]) for n in nodes) >= k
        ]
        if rack_fits:
            _, rack = min(rack_fits)
            pool_nodes = sorted(
                by_rack[rack], key=lambda n: (-len(by_node[n]), n)
            )
        else:
            # 3) Span racks: fill by descending node free count globally.
            pool_nodes = sorted(
                by_node, key=lambda n: (-len(by_node[n]), n)
            )
        chosen: list[int] = []
        for node in pool_nodes:
            take = min(k - len(chosen), len(by_node[node]))
            chosen.extend(by_node[node][:take])
            if len(chosen) == k:
                break
        return tuple(sorted(chosen))

    def _dispatch_locked(self) -> None:
        """Start every head-of-queue job the free ranks can hold.

        Caller holds the engine lock.  Placement is deterministic (see
        :meth:`_assemble_members_locked`): the lowest-numbered free
        ranks on the flat default, locality-packed on a multi-tier
        fabric — results don't depend on it, but a deterministic
        scheduler is far easier to debug.
        """
        while self._pending:
            if (
                self._max_inflight is not None
                and self._inflight >= self._max_inflight
            ):
                break
            job = self._pending[0]
            want = job.nprocs
            effective = self._nprocs - len(self._quarantined)
            if want > effective and job.allow_shrink and effective >= 1:
                # Degraded pool: gang-assemble onto what remains rather
                # than queueing forever.  Only quarantine shrinks a job
                # — contention for free ranks still means waiting.
                want = effective
            if want > len(self._free):
                break
            self._pending.popleft()
            if want != job.nprocs:
                job.nprocs = want
                self._n_shrunk += 1
                if job.lifecycle is not None:
                    self._telemetry.job_shrunk(job.lifecycle, want)
            members = self._assemble_members_locked(job.nprocs)
            self._free.difference_update(members)
            topo = self._world.topology
            if not topo.is_flat:
                spread = topo.nodes_spanned(members)
                self._gangs_placed += 1
                self._spread_sum += spread
                if spread == 1:
                    self._single_node_gangs += 1
            self._inflight += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)
            if job.lifecycle is not None:
                self._telemetry.job_assembled(
                    job.lifecycle, members, len(self._pending),
                    self._inflight, len(self._free),
                )
            self._running.add(job)
            job.start(self._world, members)
            for g, w in enumerate(members):
                self._boxes[w].put((job, g))
            self._cv.notify_all()  # queue space freed: wake submitters

    def _cancel_job(self, job: _Job) -> bool:
        """Cancel ``job`` (see :meth:`JobHandle.cancel`)."""
        with self._cv:
            if job.status == "retrying":
                # Parked in backoff: withdraw it from the retry heap so
                # drain() does not wait on a cancelled job.
                self._retry_due = [
                    entry for entry in self._retry_due
                    if entry[2] is not job
                ]
                heapq.heapify(self._retry_due)
                job.cancelled = True
                job.status = "cancelled"
                job.error = JobCancelled(f"job {job.job_id} cancelled")
                self._n_cancelled += 1
                # No telemetry job_done here: the failed attempt's
                # lifecycle already went terminal ("retrying") in
                # job_retried, and the next attempt never got one.
                job.done_event.set()
                self._cv.notify_all()
                return True
            if job.status == "pending":
                try:
                    self._pending.remove(job)
                except ValueError:  # pragma: no cover - dispatch race
                    return False
                job.cancelled = True
                job.status = "cancelled"
                job.error = JobCancelled(f"job {job.job_id} cancelled")
                self._n_cancelled += 1
                if job.lifecycle is not None:
                    self._telemetry.job_done(
                        job.lifecycle, "cancelled", 0.0, job.members,
                        len(self._pending), self._inflight, len(self._free),
                    )
                job.done_event.set()
                self._cv.notify_all()
                return True
            if job.status == "running":
                job.cancelled = True
            else:
                return False
        # Abort outside the engine lock: it takes mailbox locks.
        job.world.abort()
        return True

    # -- worker side --------------------------------------------------------

    def _worker(self, world_rank: int) -> None:
        box = self._boxes[world_rank]
        while True:
            item = box.get()
            if item is None:
                return
            job, group_rank = item
            self._run_rank(job, world_rank, group_rank)

    def _run_rank(self, job: _Job, w: int, g: int) -> None:
        """Run one member rank of one job (mirrors executor.run_rank)."""
        from repro.mpi.comm import Communicator  # local import: cycle

        world = job.world
        mailbox = self._world.mailboxes[w]
        lc = job.lifecycle
        if lc is not None and lc.t_running is None:
            # First member in stamps "running"; the t_running guard makes
            # this a one-attribute check for every later member.
            self._telemetry.job_running(lc)
        previous = mailbox.bind_job(world.membership, world.abort_event)
        try:
            try:
                comm = Communicator(
                    world.context(w), members=job.members, cid=world.base_cid
                )
                job.returns[g] = job.fn(comm, *job.args)
            except RankFailStop:
                # An *injected* fail-stop is part of the experiment, not
                # a program error: the rank silently dies and survivors
                # carry on (same contract as the standalone executor).
                pass
            except RuntimeAbort:
                pass  # unwound because another rank failed
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with job.lock:
                    job.failures[g] = exc
                    if job.failure_states is None:
                        # Snapshot diagnostics while peers still block.
                        job.failure_states = world.rank_states()
                world.abort()
            finally:
                world.retire_rank(w)
        finally:
            mailbox.bind_job(*previous)
            self._rank_done(job, w)

    def _rank_done(self, job: _Job, w: int) -> None:
        with self._cv:
            if not job.is_probe and w not in self._quarantined:
                # A rank quarantined mid-job (by another job's finalize)
                # stays withheld; probes run *on* quarantined ranks and
                # never touch the free set.
                self._free.add(w)
            job.ranks_left -= 1
            last = job.ranks_left == 0
            if not last:
                # The freed rank may already complete another job's gang.
                self._dispatch_locked()
                self._cv.notify_all()
                return
        # Last member rank out finalizes, outside the engine lock; the
        # job counts as inflight until its result is assembled, so
        # drain() cannot return with a result still being built.
        leaked = self._finalize(job)
        if job.is_probe:
            # Probes bypass all scheduler accounting; _probe_rank reads
            # job.status off the done event.
            return
        retry_inline = False
        with self._cv:
            self._inflight -= 1
            self._running.discard(job)
            self._leaked_drained += leaked
            self._quarantine_locked(job)
            if job.status == "retrying":
                self._n_retried += 1
                delay = job.retry_policy.backoff_seconds(
                    job.attempt, job.job_id
                )
                if self._supervisor is None:
                    # No supervisor thread to wake: re-admit inline,
                    # immediately (backoff needs someone to keep time).
                    delay = 0.0
                    retry_inline = True
                self._retry_seq += 1
                heapq.heappush(
                    self._retry_due,
                    (time.perf_counter() + delay, self._retry_seq, job),
                )
                if job.lifecycle is not None:
                    self._telemetry.job_retried(
                        job.lifecycle, job.attempt, delay, job.members,
                        leaked=leaked,
                    )
            else:
                if job.status == "done":
                    self._n_completed += 1
                elif job.status == "cancelled":
                    self._n_cancelled += 1
                else:
                    self._n_failed += 1
                if job.lifecycle is not None:
                    self._telemetry.job_done(
                        job.lifecycle, job.status, job.virtual_seconds,
                        job.members, len(self._pending), self._inflight,
                        len(self._free), leaked=leaked,
                    )
            self._dispatch_locked()
            self._cv.notify_all()  # wake drain()ers and submitters
        if retry_inline:
            self._admit_due_retries()

    def _finalize(self, job: _Job) -> int:
        """Assemble the job's result/error; sweep leaked envelopes.

        Runs outside the engine lock, exactly once per job, on the
        worker thread of the job's last-finishing rank.
        """
        world = job.world
        wall = time.perf_counter() - job.t0
        clocks = [world.clocks[w].t for w in job.members]
        job.virtual_seconds = max(clocks) if clocks else 0.0
        if world.run_capture is not None:
            # Finalize even on failure so a crashed job still leaves a
            # usable (partial) profile behind.
            job.tracer.finish_run(
                world.run_capture, clocks,
                label=getattr(job.fn, "__name__", None),
            )
        # Messages the job sent but never received (e.g. unwound mid-
        # collective) must not survive it: a persistent world would
        # accumulate them forever.  The sweep is scoped to tags rooted
        # at this job's base cid — concurrent jobs are untouched.
        leaked = 0
        for w in job.members:
            leaked += self._world.mailboxes[w].drain_where(
                lambda src, tag: world.owns_tag(tag)
            )
        with job.lock:
            timed_out = job.timed_out
        err: BaseException | None = None
        terminal = "failed"
        if job.cancelled:
            err = JobCancelled(f"job {job.job_id} cancelled")
            terminal = "cancelled"
        elif job.failures:
            err = SpmdError(
                job.failures, rank_states=job.failure_states
            )
        elif timed_out:
            err = job.timeout_error
        if err is None:
            group_rank = {wr: gr for gr, wr in enumerate(job.members)}
            dead = world.membership.dead_snapshot()
            job.result = SpmdResult(
                returns=job.returns,
                clocks=clocks,
                traces=[world.traces[w] for w in job.members],
                wall_seconds=wall,
                profile=world.run_capture,
                failed_ranks=frozenset(group_rank[w] for w in dead),
            )
            job.status = "done"
            job.done_event.set()
            return leaked
        policy = job.retry_policy
        if (
            terminal == "failed"
            and policy is not None
            and not self._closed
            and policy.should_retry(job.attempt, err)
        ):
            # Transient failure under a RetryPolicy: park for backoff
            # instead of going terminal.  The done event stays unset —
            # the client keeps waiting — and _rank_done schedules the
            # re-admission.  On exhausted retries the *last* attempt's
            # error (with its rank_states) is what surfaces.
            job.last_error = err
            job.status = "retrying"
            return leaked
        job.error = err
        job.status = terminal
        job.done_event.set()
        return leaked

    # -- self-healing internals (called by the Supervisor) ------------------

    def _quarantine_locked(self, job: _Job) -> None:
        """Quarantine pool ranks ``job`` reports dead (engine lock held).

        Feeds rank-pool health from job finalize: a world rank that
        fail-stopped inside the job is pulled from the free set and
        withheld from gang assembly until a probe revives it.
        """
        cfg = self._sup_cfg
        if cfg is None or not cfg.quarantine or job.world is None:
            return
        now = time.perf_counter()
        for w in job.world.membership.dead_snapshot():
            if w in self._quarantined:
                continue
            self._quarantined.add(w)
            self._quarantined_at[w] = now
            self._free.discard(w)
            self._n_quarantines += 1
            if self._telemetry.enabled:
                self._telemetry.rank_quarantined(
                    w, len(self._quarantined),
                    self._nprocs - len(self._quarantined),
                )
        self._update_degraded_locked()

    def _update_degraded_locked(self) -> None:
        cfg = self._sup_cfg
        effective = self._nprocs - len(self._quarantined)
        degraded = (
            cfg is not None and effective < cfg.capacity_floor * self._nprocs
        )
        if degraded != self._degraded:
            self._degraded = degraded
            if self._telemetry.enabled:
                self._telemetry.degraded_changed(degraded, effective)

    def _admit_due_retries(self) -> None:
        """Re-admit retry-parked jobs whose backoff has elapsed (every
        parked job, once the engine is closing — a graceful drain lets
        retries finish rather than stranding their waiters)."""
        while True:
            with self._cv:
                if not self._retry_due:
                    return
                due_at, _, job = self._retry_due[0]
                if due_at > time.perf_counter() and not self._closed:
                    return
                heapq.heappop(self._retry_due)
                if job.done_event.is_set():
                    # Cancelled while parked; heap shrank: wake drain().
                    self._cv.notify_all()
                    continue
            self._readmit_retry(job)

    def _readmit_retry(self, job: _Job) -> None:
        """Queue the next attempt of a retry-parked job."""
        job.attempt += 1
        plan = job.retry_policy.fault_plan_for(
            job.fault_plan_source, job.attempt - 1
        )
        job.fault_plan = plan
        job.world = None
        job.members = ()
        job.timed_out = False
        job.timeout_error = None
        job.nprocs = job.requested_nprocs  # a prior attempt may have shrunk
        job.admitted_at = time.perf_counter()
        job.status = "pending"
        tel = self._telemetry
        with self._cv:
            if job.done_event.is_set():  # pragma: no cover - cancel race
                return
            self._pending.append(job)
            if tel.enabled:
                job.lifecycle = tel.job_admitted(
                    job.job_id, job.label, job.session, job.nprocs,
                    plan is not None, tel.now(), len(self._pending),
                    attempt=job.attempt,
                )
            self._dispatch_locked()
            self._cv.notify_all()

    def _reap_stuck_jobs(self) -> None:
        """Fail jobs stuck past their deadline, server-side.

        Escalation above the per-collective hang watchdog and the
        *client-side* ``JobHandle.result`` timeout: even with no client
        blocked in ``result()``, a job that exceeds its submit-time
        ``timeout`` (plus the supervisor's grace) is aborted and
        unwound, so an abandoned wedged job can never hold pool ranks
        forever.  Pending jobs past their deadline are failed in place.
        """
        cfg = self._sup_cfg
        if cfg is None or not cfg.reap:
            return
        now = time.perf_counter()
        to_abort: list[_Job] = []
        with self._cv:
            for job in self._running:
                if job.is_probe or job.timeout is None or job.cancelled:
                    continue
                if now - job.t0 <= job.timeout + cfg.reap_grace:
                    continue
                with job.lock:
                    if job.timed_out:
                        continue
                to_abort.append(job)
            expired = [
                job for job in self._pending
                if job.timeout is not None
                and now - job.admitted_at > job.timeout + cfg.reap_grace
            ]
            for job in expired:
                self._pending.remove(job)
                job.status = "failed"
                job.error = SpmdTimeout(
                    f"job {job.job_id} spent over {job.timeout} s queued "
                    f"without being dispatched (pool saturated or "
                    f"degraded); reaped by the engine supervisor"
                )
                self._n_failed += 1
                self._n_reaped += 1
                if self._telemetry.enabled:
                    self._telemetry.job_reaped(job.job_id)
                if job.lifecycle is not None:
                    self._telemetry.job_done(
                        job.lifecycle, "failed", 0.0, (),
                        len(self._pending), self._inflight, len(self._free),
                    )
                job.done_event.set()
            if expired:
                self._cv.notify_all()
        for job in to_abort:
            states = job.world.rank_states()
            err = SpmdTimeout(
                f"job {job.job_id} exceeded its {job.timeout} s deadline; "
                f"reaped by the engine supervisor (aborted and unwound)",
                rank_states=states,
            )
            with job.lock:
                if job.timed_out:  # pragma: no cover - client-side race
                    continue
                job.timed_out = True
                job.timeout_error = err
            with self._cv:
                self._n_reaped += 1
            if self._telemetry.enabled:
                self._telemetry.job_reaped(job.job_id)
            # Abort outside the engine lock: it takes mailbox locks.
            job.world.abort()

    def _probe_quarantined(self) -> None:
        """Probe quarantined ranks whose cool-down elapsed; revive the
        ones that pass (return them to the free set and re-dispatch)."""
        cfg = self._sup_cfg
        if cfg is None or not cfg.quarantine:
            return
        now = time.perf_counter()
        with self._cv:
            if self._closed:
                return
            due = [
                w for w, t in self._quarantined_at.items()
                if now - t >= cfg.probe_after
            ]
        for w in due:
            ok = self._probe_rank(w)
            with self._cv:
                if self._closed or w not in self._quarantined:
                    continue
                if ok:
                    self._quarantined.discard(w)
                    del self._quarantined_at[w]
                    self._free.add(w)
                    self._n_revivals += 1
                    if self._telemetry.enabled:
                        self._telemetry.rank_revived(
                            w, len(self._quarantined),
                            self._nprocs - len(self._quarantined),
                        )
                    self._update_degraded_locked()
                    self._dispatch_locked()
                    self._cv.notify_all()
                else:  # pragma: no cover - probe failure is exceptional
                    self._quarantined_at[w] = time.perf_counter()

    def _probe_backend(self) -> None:
        """Supervisor step: restart dead process-backend workers.

        A dead worker is never a correctness problem — its rank's
        accumulates fall back to the in-process fold — but it silently
        costs parallelism, so the supervisor re-forks it.  No-op on the
        thread backend.
        """
        pool = self._proc_pool
        if pool is None or pool.closed:
            return
        for r in pool.dead_workers():
            pool.restart_worker(r)

    def _probe_rank(self, w: int) -> bool:
        """One health probe of quarantined rank ``w``: revive its shared
        world state (membership + stale-mailbox sweep), then run a
        1-rank probe job on it through the normal worker path."""
        if not self._threads[w].is_alive():
            return False
        if self._proc_pool is not None and not self._proc_pool.ping(w):
            # Process backend: a quarantined rank only counts revived
            # when its offload worker answers too (restart first).
            if not self._proc_pool.restart_worker(w):
                return False
        swept = self._world.revive_rank(w)
        with self._cv:
            if self._closed:
                return False
            self._revival_swept += swept
            probe_id = self._next_job_id
            self._next_job_id += 1
        job = _Job(
            probe_id, _probe_fn, (), 1,
            cost_model=None, record_events=False, isolate_payloads=True,
            timeout=None, tracer=None, fault_plan=None,
            label=f"probe-rank-{w}",
        )
        job.is_probe = True
        job.start(self._world, (w,))
        self._boxes[w].put((job, 0))
        if not job.done_event.wait(self._sup_cfg.probe_timeout):
            return False
        return job.status == "done" and job.returns == ["ok"]


class Session:
    """A client-facing handle over an :class:`Engine`.

    Sessions add per-client bookkeeping on top of the engine's global
    scheduling: each tracks the handles it submitted, so a client can
    drain *its own* jobs without waiting on anyone else's.  Many
    sessions (threads) may share one engine.
    """

    def __init__(self, engine: Engine, label: str | None = None):
        self._engine = engine
        self.label = label
        self._lock = threading.Lock()
        self._handles: list[JobHandle] = []

    @property
    def engine(self) -> Engine:
        return self._engine

    @property
    def handles(self) -> list[JobHandle]:
        """Handles of every job this session submitted (snapshot)."""
        with self._lock:
            return list(self._handles)

    def submit(self, fn: Callable[..., Any], **kwargs: Any) -> JobHandle:
        """Submit a job (same keywords as :meth:`Engine.submit`).  The
        session's label rides along so telemetry lifecycles attribute
        the job to this client."""
        kwargs.setdefault("session", self.label)
        handle = self._engine.submit(fn, **kwargs)
        with self._lock:
            self._handles.append(handle)
        return handle

    def results(self, timeout: float | None = None) -> list:
        """The :class:`SpmdResult` of every submitted job, in submission
        order (raises on the first failed job, like the handle would)."""
        return [h.result(timeout) for h in self.handles]

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until every job this session submitted has finished."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in self.handles:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0.0:
                return False
            if not handle.wait(remaining):
                return False
        return True

    def close(self, timeout: float | None = None) -> None:
        """Drain the session's jobs (the engine itself stays up)."""
        self.drain(timeout)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
