"""The persistent multi-tenant engine: one world, resident rank threads,
many concurrent jobs.

Where :func:`repro.runtime.spmd_run` historically built a fresh
:class:`~repro.runtime.world.World` and spawned ``nprocs`` threads per
call, an :class:`Engine` pays those costs once: it owns one world (the
mailboxes, the context-id allocator, the cross-job schedule cache) and
one resident thread per pool rank.  Clients submit SPMD functions
through :meth:`Engine.submit` or a :class:`Session` and get back
:class:`~repro.engine.job.JobHandle`\\ s.

Scheduling
----------
Jobs are gang-scheduled FIFO: a job asking for ``k <= pool`` ranks waits
until ``k`` pool ranks are free, then runs on the lowest-numbered free
ranks.  Jobs smaller than the pool run genuinely concurrently.  The
queue is strict FIFO (a large job at the head blocks later small ones),
which trades some utilization for no starvation and a deterministic
admission order.

Isolation
---------
Each dispatched job gets a :class:`~repro.runtime.world.JobWorld`: fresh
virtual clocks, traces, membership (failure detector + watchdog), abort
flag, tracer capture and fault injector, plus a world-unique base
context id so two jobs' message tags can never match even while
interleaved on the same mailboxes.  Results are **bit-identical** to a
standalone ``spmd_run`` of the same function: returns, per-rank virtual
times, message counts and makespan — independent of where in the pool
the job landed (costs are rank-uniform and everything user-visible is
labeled with group ranks).

Admission control
-----------------
``queue_depth`` bounds how many jobs may wait; a full queue blocks
:meth:`Engine.submit` (backpressure) or raises
:class:`~repro.errors.EngineSaturated` for non-blocking submits.
``max_inflight`` optionally caps concurrently *running* jobs below what
free ranks would allow.  :meth:`Engine.drain` waits for quiescence;
:meth:`Engine.shutdown` closes admission and either drains or aborts.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Any, Callable, Sequence

from repro.errors import (
    CommunicatorError,
    EngineClosed,
    EngineSaturated,
    JobCancelled,
    RankFailStop,
    RuntimeAbort,
    SpmdError,
)
from repro.obs.tracer import active_tracer
from repro.obs.telemetry import NULL_ENGINE_TELEMETRY, EngineTelemetry
from repro.runtime.costmodel import CostModel
from repro.runtime.executor import SpmdResult
from repro.runtime.world import World

from repro.engine.job import JobHandle, _Job

__all__ = ["Engine", "Session"]


class Engine:
    """A resident rank pool serving many SPMD jobs over one world.

    ``telemetry`` enables the service-level observability layer
    (:mod:`repro.obs.telemetry`): ``True`` builds a fresh
    :class:`~repro.obs.telemetry.EngineTelemetry`, or pass a
    preconfigured instance; the default (off) keeps the submit/schedule
    hot path allocation-free (the same guarantee as disabled tracing).
    """

    def __init__(
        self,
        nprocs: int,
        *,
        cost_model: CostModel | None = None,
        queue_depth: int = 128,
        max_inflight: int | None = None,
        telemetry: "bool | EngineTelemetry | None" = False,
    ):
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if telemetry is True:
            telemetry = EngineTelemetry(nprocs)
        elif not telemetry:
            telemetry = NULL_ENGINE_TELEMETRY
        self._telemetry = telemetry
        telemetry.bind(self)
        # The shared world validates nprocs >= 1 before any thread starts.
        self._world = World(nprocs, cost_model)
        self._nprocs = nprocs
        self._queue_depth = queue_depth
        self._max_inflight = max_inflight
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._pending: deque[_Job] = deque()
        self._running: set[_Job] = set()
        self._free: set[int] = set(range(nprocs))
        self._inflight = 0
        self._closed = False
        self._joined = False
        self._next_job_id = 1
        # Counters (read via stats(); written under the engine lock).
        self._n_submitted = 0
        self._n_completed = 0
        self._n_failed = 0
        self._n_cancelled = 0
        self._n_rejected = 0
        self._peak_inflight = 0
        self._leaked_drained = 0
        self._boxes: list[queue.SimpleQueue] = [
            queue.SimpleQueue() for _ in range(nprocs)
        ]
        self._threads = [
            threading.Thread(
                target=self._worker, args=(r,),
                name=f"engine-rank-{r}", daemon=True,
            )
            for r in range(nprocs)
        ]
        for t in self._threads:
            t.start()

    # -- introspection ------------------------------------------------------

    @property
    def nprocs(self) -> int:
        """Pool size: the maximum ``nprocs`` a job may request."""
        return self._nprocs

    @property
    def world(self) -> World:
        """The shared world (mailboxes, cid allocator, schedule cache)."""
        return self._world

    @property
    def telemetry(self):
        """The engine's :class:`~repro.obs.telemetry.EngineTelemetry`,
        or the shared null object when telemetry is off (``.enabled``
        distinguishes them)."""
        return self._telemetry

    def set_telemetry(
        self, telemetry: "bool | EngineTelemetry | None"
    ) -> None:
        """Swap the telemetry layer on a live engine (``True`` builds a
        fresh :class:`EngineTelemetry`; ``False``/``None`` disables).

        Meant for quiescent points — attaching observability to a
        warmed-up engine, or starting a fresh measurement series after
        warm-up traffic (the throughput benchmark does the latter).
        Jobs admitted before the swap carry lifecycles stamped by the
        old telemetry but report their remaining transitions to the new
        one, so swapping with jobs pending or running skews both series.
        """
        if telemetry is True:
            telemetry = EngineTelemetry(self._nprocs)
        elif not telemetry:
            telemetry = NULL_ENGINE_TELEMETRY
        with self._lock:
            self._telemetry = telemetry
        telemetry.bind(self)

    def stats(self) -> dict[str, Any]:
        """Scheduler and cache counters (a consistent snapshot)."""
        with self._lock:
            return {
                "nprocs": self._nprocs,
                "telemetry_enabled": self._telemetry.enabled,
                "pending": len(self._pending),
                "inflight": self._inflight,
                "free_ranks": len(self._free),
                "submitted": self._n_submitted,
                "completed": self._n_completed,
                "failed": self._n_failed,
                "cancelled": self._n_cancelled,
                "rejected": self._n_rejected,
                "peak_inflight": self._peak_inflight,
                "leaked_messages_drained": self._leaked_drained,
                "schedule_cache": self._world.schedule_cache.stats(),
                "kernel_cache": self._world.kernel_cache.stats(),
            }

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        *,
        nprocs: int | None = None,
        args: Sequence[Any] = (),
        cost_model: CostModel | None = None,
        record_events: bool = False,
        isolate_payloads: bool = True,
        timeout: float | None = 300.0,
        tracer: Any | None = None,
        fault_plan: Any | None = None,
        label: str | None = None,
        session: str | None = None,
        block: bool = True,
        queue_timeout: float | None = None,
    ) -> JobHandle:
        """Submit ``fn(comm, *args)`` as a job; returns a :class:`JobHandle`.

        Parameters mirror :func:`repro.runtime.spmd_run` (``nprocs``
        defaults to the pool size; it may be smaller, letting several
        jobs run concurrently).  ``timeout`` is the wall-clock budget
        :meth:`JobHandle.result` enforces.  Admission control:

        * ``block=True`` (default) waits while the pending queue is at
          ``queue_depth``, up to ``queue_timeout`` seconds (None = as
          long as it takes), then raises
          :class:`~repro.errors.EngineSaturated`;
        * ``block=False`` raises :class:`EngineSaturated` immediately on
          a full queue.

        ``session`` labels the job's telemetry lifecycle with the
        submitting client (set automatically by :meth:`Session.submit`).
        Raises :class:`~repro.errors.EngineClosed` after :meth:`shutdown`.
        """
        nprocs = self._nprocs if nprocs is None else nprocs
        tel = self._telemetry
        # Entry stamp *before* any backpressure wait, so queued-submitted
        # measures the admission stall.  The disabled branch stays
        # allocation-free: no lifecycle object, no instrument touches.
        t_submit = tel.now() if tel.enabled else 0.0
        if nprocs < 1:
            raise CommunicatorError(f"nprocs must be >= 1, got {nprocs}")
        if nprocs > self._nprocs:
            raise CommunicatorError(
                f"job requests {nprocs} ranks but the engine pool has "
                f"{self._nprocs}"
            )
        if tracer is None:
            # Same convention as spmd_run: an installed profiling session
            # captures jobs that don't bring their own tracer.  (The
            # profile CLI's rank override is applied by the spmd_run
            # shim, not here — an engine's pool size is fixed.)
            tracer = active_tracer()
        deadline = (
            None if queue_timeout is None
            else time.monotonic() + queue_timeout
        )
        with self._cv:
            while True:
                if self._closed:
                    raise EngineClosed("engine is shut down")
                if len(self._pending) < self._queue_depth:
                    break
                if not block:
                    self._n_rejected += 1
                    if tel.enabled:
                        tel.job_rejected(
                            label if label is not None
                            else getattr(fn, "__name__", None),
                            session, nprocs, t_submit,
                        )
                    raise EngineSaturated(
                        f"pending queue is at its depth limit "
                        f"({self._queue_depth})"
                    )
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0.0:
                    self._n_rejected += 1
                    if tel.enabled:
                        tel.job_rejected(
                            label if label is not None
                            else getattr(fn, "__name__", None),
                            session, nprocs, t_submit,
                        )
                    raise EngineSaturated(
                        f"queue stayed at its depth limit "
                        f"({self._queue_depth}) for {queue_timeout} s"
                    )
                self._cv.wait(remaining)
            job = _Job(
                self._next_job_id, fn, args, nprocs,
                cost_model=cost_model,
                record_events=record_events,
                isolate_payloads=isolate_payloads,
                timeout=timeout,
                tracer=tracer,
                fault_plan=fault_plan,
                label=label,
            )
            self._next_job_id += 1
            self._n_submitted += 1
            self._pending.append(job)
            if tel.enabled:
                job.lifecycle = tel.job_admitted(
                    job.job_id, job.label, session, nprocs,
                    fault_plan is not None, t_submit, len(self._pending),
                )
            self._dispatch_locked()
        return JobHandle(job, self)

    def session(self, label: str | None = None) -> "Session":
        """A client handle that tracks its own submissions."""
        return Session(self, label=label)

    # -- lifecycle ----------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Block until no job is pending or running; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while self._pending or self._inflight:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0.0:
                    return False
                self._cv.wait(remaining)
        return True

    def shutdown(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Close admission and stop the pool.

        ``drain=True`` (graceful) lets queued and running jobs finish
        first; ``drain=False`` cancels every pending job and aborts every
        running one (their waiters see
        :class:`~repro.errors.JobCancelled`).  Idempotent.
        """
        with self._cv:
            already_joined = self._joined
            self._closed = True
            self._cv.notify_all()
        if already_joined:
            return
        if drain:
            self.drain(timeout)
        else:
            with self._cv:
                pending = list(self._pending)
                self._pending.clear()
                running = list(self._running)
                for job in pending:
                    job.cancelled = True
                    job.status = "cancelled"
                    job.error = JobCancelled(
                        f"job {job.job_id} cancelled by engine shutdown"
                    )
                    self._n_cancelled += 1
                    if job.lifecycle is not None:
                        self._telemetry.job_done(
                            job.lifecycle, "cancelled", 0.0, job.members,
                            len(self._pending), self._inflight,
                            len(self._free),
                        )
                    job.done_event.set()
                self._cv.notify_all()
            for job in running:
                job.cancelled = True
                job.world.abort()
        for box in self._boxes:
            box.put(None)
        join_deadline = time.monotonic() + (5.0 if timeout is None else timeout)
        for t in self._threads:
            t.join(timeout=max(join_deadline - time.monotonic(), 0.0))
        self._joined = True

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    # -- scheduling internals -----------------------------------------------

    def _dispatch_locked(self) -> None:
        """Start every head-of-queue job the free ranks can hold.

        Caller holds the engine lock.  Placement is deterministic: the
        lowest-numbered free ranks, in order — results don't depend on
        it, but a deterministic scheduler is far easier to debug.
        """
        while self._pending:
            if (
                self._max_inflight is not None
                and self._inflight >= self._max_inflight
            ):
                break
            job = self._pending[0]
            if job.nprocs > len(self._free):
                break
            self._pending.popleft()
            members = tuple(sorted(self._free)[: job.nprocs])
            self._free.difference_update(members)
            self._inflight += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)
            if job.lifecycle is not None:
                self._telemetry.job_assembled(
                    job.lifecycle, members, len(self._pending),
                    self._inflight, len(self._free),
                )
            self._running.add(job)
            job.start(self._world, members)
            for g, w in enumerate(members):
                self._boxes[w].put((job, g))
            self._cv.notify_all()  # queue space freed: wake submitters

    def _cancel_job(self, job: _Job) -> bool:
        """Cancel ``job`` (see :meth:`JobHandle.cancel`)."""
        with self._cv:
            if job.status == "pending":
                try:
                    self._pending.remove(job)
                except ValueError:  # pragma: no cover - dispatch race
                    return False
                job.cancelled = True
                job.status = "cancelled"
                job.error = JobCancelled(f"job {job.job_id} cancelled")
                self._n_cancelled += 1
                if job.lifecycle is not None:
                    self._telemetry.job_done(
                        job.lifecycle, "cancelled", 0.0, job.members,
                        len(self._pending), self._inflight, len(self._free),
                    )
                job.done_event.set()
                self._cv.notify_all()
                return True
            if job.status == "running":
                job.cancelled = True
            else:
                return False
        # Abort outside the engine lock: it takes mailbox locks.
        job.world.abort()
        return True

    # -- worker side --------------------------------------------------------

    def _worker(self, world_rank: int) -> None:
        box = self._boxes[world_rank]
        while True:
            item = box.get()
            if item is None:
                return
            job, group_rank = item
            self._run_rank(job, world_rank, group_rank)

    def _run_rank(self, job: _Job, w: int, g: int) -> None:
        """Run one member rank of one job (mirrors executor.run_rank)."""
        from repro.mpi.comm import Communicator  # local import: cycle

        world = job.world
        mailbox = self._world.mailboxes[w]
        lc = job.lifecycle
        if lc is not None and lc.t_running is None:
            # First member in stamps "running"; the t_running guard makes
            # this a one-attribute check for every later member.
            self._telemetry.job_running(lc)
        previous = mailbox.bind_job(world.membership, world.abort_event)
        try:
            try:
                comm = Communicator(
                    world.context(w), members=job.members, cid=world.base_cid
                )
                job.returns[g] = job.fn(comm, *job.args)
            except RankFailStop:
                # An *injected* fail-stop is part of the experiment, not
                # a program error: the rank silently dies and survivors
                # carry on (same contract as the standalone executor).
                pass
            except RuntimeAbort:
                pass  # unwound because another rank failed
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                with job.lock:
                    job.failures[g] = exc
                    if job.failure_states is None:
                        # Snapshot diagnostics while peers still block.
                        job.failure_states = world.rank_states()
                world.abort()
            finally:
                world.retire_rank(w)
        finally:
            mailbox.bind_job(*previous)
            self._rank_done(job, w)

    def _rank_done(self, job: _Job, w: int) -> None:
        with self._cv:
            self._free.add(w)
            job.ranks_left -= 1
            last = job.ranks_left == 0
            if not last:
                # The freed rank may already complete another job's gang.
                self._dispatch_locked()
                self._cv.notify_all()
                return
        # Last member rank out finalizes, outside the engine lock; the
        # job counts as inflight until its result is assembled, so
        # drain() cannot return with a result still being built.
        leaked = self._finalize(job)
        with self._cv:
            self._inflight -= 1
            self._running.discard(job)
            self._leaked_drained += leaked
            if job.status == "done":
                self._n_completed += 1
            elif job.status == "cancelled":
                self._n_cancelled += 1
            else:
                self._n_failed += 1
            if job.lifecycle is not None:
                self._telemetry.job_done(
                    job.lifecycle, job.status, job.virtual_seconds,
                    job.members, len(self._pending), self._inflight,
                    len(self._free),
                )
            self._dispatch_locked()
            self._cv.notify_all()  # wake drain()ers and submitters

    def _finalize(self, job: _Job) -> int:
        """Assemble the job's result/error; sweep leaked envelopes.

        Runs outside the engine lock, exactly once per job, on the
        worker thread of the job's last-finishing rank.
        """
        world = job.world
        wall = time.perf_counter() - job.t0
        clocks = [world.clocks[w].t for w in job.members]
        job.virtual_seconds = max(clocks) if clocks else 0.0
        if world.run_capture is not None:
            # Finalize even on failure so a crashed job still leaves a
            # usable (partial) profile behind.
            job.tracer.finish_run(
                world.run_capture, clocks,
                label=getattr(job.fn, "__name__", None),
            )
        # Messages the job sent but never received (e.g. unwound mid-
        # collective) must not survive it: a persistent world would
        # accumulate them forever.  The sweep is scoped to tags rooted
        # at this job's base cid — concurrent jobs are untouched.
        leaked = 0
        for w in job.members:
            leaked += self._world.mailboxes[w].drain_where(
                lambda src, tag: world.owns_tag(tag)
            )
        with job.lock:
            timed_out = job.timed_out
        if job.cancelled:
            job.error = JobCancelled(f"job {job.job_id} cancelled")
            job.status = "cancelled"
        elif job.failures:
            job.error = SpmdError(
                job.failures, rank_states=job.failure_states
            )
            job.status = "failed"
        elif timed_out:
            job.error = job.timeout_error
            job.status = "failed"
        else:
            group_rank = {wr: gr for gr, wr in enumerate(job.members)}
            dead = world.membership.dead_snapshot()
            job.result = SpmdResult(
                returns=job.returns,
                clocks=clocks,
                traces=[world.traces[w] for w in job.members],
                wall_seconds=wall,
                profile=world.run_capture,
                failed_ranks=frozenset(group_rank[w] for w in dead),
            )
            job.status = "done"
        job.done_event.set()
        return leaked


class Session:
    """A client-facing handle over an :class:`Engine`.

    Sessions add per-client bookkeeping on top of the engine's global
    scheduling: each tracks the handles it submitted, so a client can
    drain *its own* jobs without waiting on anyone else's.  Many
    sessions (threads) may share one engine.
    """

    def __init__(self, engine: Engine, label: str | None = None):
        self._engine = engine
        self.label = label
        self._lock = threading.Lock()
        self._handles: list[JobHandle] = []

    @property
    def engine(self) -> Engine:
        return self._engine

    @property
    def handles(self) -> list[JobHandle]:
        """Handles of every job this session submitted (snapshot)."""
        with self._lock:
            return list(self._handles)

    def submit(self, fn: Callable[..., Any], **kwargs: Any) -> JobHandle:
        """Submit a job (same keywords as :meth:`Engine.submit`).  The
        session's label rides along so telemetry lifecycles attribute
        the job to this client."""
        kwargs.setdefault("session", self.label)
        handle = self._engine.submit(fn, **kwargs)
        with self._lock:
            self._handles.append(handle)
        return handle

    def results(self, timeout: float | None = None) -> list:
        """The :class:`SpmdResult` of every submitted job, in submission
        order (raises on the first failed job, like the handle would)."""
        return [h.result(timeout) for h in self.handles]

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until every job this session submitted has finished."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for handle in self.handles:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0.0:
                return False
            if not handle.wait(remaining):
                return False
        return True

    def close(self, timeout: float | None = None) -> None:
        """Drain the session's jobs (the engine itself stays up)."""
        self.drain(timeout)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
