"""``python -m repro top`` — live terminal dashboard over engine telemetry.

Polls the ``/snapshot.json`` endpoint that ``python -m repro serve
--metrics-port P`` (a :class:`~repro.engine.metrics_http.MetricsServer`)
exposes, and renders one screenful per refresh: queue depth, inflight
jobs, free ranks, per-rank utilization bars, the lifecycle counters and
the p50/p95/p99 latency tails.  ``--once`` prints a single frame and
exits — what the CI smoke uses; without it the screen refreshes every
``--interval`` seconds until interrupted.

The renderer (:func:`render_frame`) is a pure snapshot-dict → str
function, so tests can drive it without a socket.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any

__all__ = ["run_top", "render_frame", "fetch_snapshot"]

_BAR_WIDTH = 24
_CLEAR = "\x1b[2J\x1b[H"  # clear screen + home cursor


def fetch_snapshot(url: str, timeout: float = 5.0) -> dict[str, Any]:
    """GET ``<url>/snapshot.json`` and parse the telemetry frame."""
    with urllib.request.urlopen(
        url.rstrip("/") + "/snapshot.json", timeout=timeout
    ) as resp:
        return json.loads(resp.read().decode())


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _fmt_seconds(value: Any) -> str:
    if value is None:
        return "    -"
    value = float(value)
    if value >= 1.0:
        return f"{value:7.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:6.2f}ms"
    return f"{value * 1e6:6.1f}us"


def render_frame(frame: dict[str, Any]) -> str:
    """One telemetry snapshot frame as a dashboard screen (plain text)."""
    if not frame or frame.get("enabled") is False:
        return "repro top: telemetry disabled on the serving engine\n"
    lines: list[str] = []
    uptime = frame.get("uptime_s", 0.0)
    nprocs = frame.get("nprocs", 0)
    lines.append(
        f"repro engine top — pool {nprocs} ranks, up {uptime:.1f}s"
    )
    metrics = frame.get("metrics", {})
    gauges = metrics.get("gauges", {})
    counters = metrics.get("counters", {})
    lines.append(
        "  queue {:>4}   inflight {:>4}   free ranks {:>4}".format(
            int(gauges.get("engine.queue.depth", 0) or 0),
            int(gauges.get("engine.jobs.inflight", 0) or 0),
            int(gauges.get("engine.ranks.free", 0) or 0),
        )
    )
    lines.append(
        "  jobs: {} submitted, {} completed, {} failed, {} cancelled, "
        "{} rejected".format(
            counters.get("engine.jobs.submitted", 0),
            counters.get("engine.jobs.completed", 0),
            counters.get("engine.jobs.failed", 0),
            counters.get("engine.jobs.cancelled", 0),
            counters.get("engine.jobs.rejected", 0),
        )
    )
    eng = frame.get("engine")
    if eng and "effective_capacity" in eng:
        degraded = " ** DEGRADED **" if eng.get("degraded") else ""
        lines.append(
            "  capacity: {}/{} ranks schedulable ({} quarantined){}".format(
                eng["effective_capacity"], eng.get("nprocs", nprocs),
                len(eng.get("quarantined_ranks", [])), degraded,
            )
        )
        lines.append(
            "  self-heal: {} retries, {} quarantines, {} revivals, "
            "{} reaped, {} shrunk".format(
                eng.get("retried", 0), eng.get("quarantines", 0),
                eng.get("revivals", 0), eng.get("reaped", 0),
                eng.get("shrunk", 0),
            )
        )
    cache_hits = gauges.get("engine.schedule_cache.hits")
    if cache_hits is not None:
        rate = gauges.get("engine.schedule_cache.hit_rate", 0.0) or 0.0
        lines.append(
            "  schedule cache: {} hits / {} misses (hit rate {:.3f})".format(
                int(cache_hits),
                int(gauges.get("engine.schedule_cache.misses", 0) or 0),
                rate,
            )
        )
    kernel_hits = gauges.get("engine.kernel_cache.hits")
    if kernel_hits is not None:
        rate = gauges.get("engine.kernel_cache.hit_rate", 0.0) or 0.0
        lines.append(
            "  kernel cache:   {} hits / {} misses (hit rate {:.3f})".format(
                int(kernel_hits),
                int(gauges.get("engine.kernel_cache.misses", 0) or 0),
                rate,
            )
        )
    backend = (eng or {}).get("backend")
    if backend is not None:
        lines.append(f"  backend: {backend}")
    ipc_frames = gauges.get("backend.ipc.frames")
    if ipc_frames is not None:
        total = (
            int(gauges.get("backend.ipc.shm_hits", 0) or 0)
            + int(gauges.get("backend.ipc.pickle_fallbacks", 0) or 0)
        )
        shm = int(gauges.get("backend.ipc.shm_hits", 0) or 0)
        cov = shm / total if total else 0.0
        lines.append(
            "  backend ipc: {} frames, {} bytes, {} shm hits / "
            "{} pickle fallbacks (zero-copy {:.0%})".format(
                int(ipc_frames),
                int(gauges.get("backend.ipc.bytes", 0) or 0),
                shm,
                int(gauges.get("backend.ipc.pickle_fallbacks", 0) or 0),
                cov,
            )
        )
    lines.append("")
    lines.append("  rank utilization (busy fraction since start)")
    util = frame.get("utilization", [])
    jobs_per_rank = frame.get("jobs_per_rank", [0] * len(util))
    for rank, fraction in enumerate(util):
        jobs = jobs_per_rank[rank] if rank < len(jobs_per_rank) else 0
        lines.append(
            f"    rank {rank:>2} [{_bar(fraction)}] "
            f"{fraction * 100:5.1f}%  {jobs} jobs"
        )
    lines.append("")
    lines.append("  latency            p50       p95       p99     count")
    hists = metrics.get("histograms", {})
    for short, name in (
        ("queue wait", "engine.job.queue_wait_seconds"),
        ("exec", "engine.job.exec_seconds"),
        ("end-to-end", "engine.job.e2e_seconds"),
        ("virtual", "engine.job.virtual_seconds"),
    ):
        summary = hists.get(name)
        if summary is None:
            continue
        lines.append(
            "    {:<12} {} {} {} {:>9}".format(
                short,
                _fmt_seconds(summary.get("p50")),
                _fmt_seconds(summary.get("p95")),
                _fmt_seconds(summary.get("p99")),
                summary.get("count", 0),
            )
        )
    drops = frame.get("interval_drops", 0)
    if drops:
        lines.append(f"\n  (busy-interval ring dropped {drops} intervals)")
    return "\n".join(lines) + "\n"


def run_top(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="Live dashboard over a serving engine's telemetry "
        "(pair with `python -m repro serve --metrics-port P`).",
    )
    parser.add_argument(
        "--url", default=None, metavar="URL",
        help="metrics endpoint base URL (overrides --host/--port)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="metrics endpoint host (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=9464, metavar="P",
        help="metrics endpoint port (default: 9464)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh interval in seconds (default: 1.0)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (no screen clearing)",
    )
    ns = parser.parse_args(argv)
    url = ns.url if ns.url is not None else f"http://{ns.host}:{ns.port}"

    try:
        while True:
            try:
                frame = fetch_snapshot(url)
            except (urllib.error.URLError, OSError) as exc:
                print(
                    f"repro top: cannot reach {url}/snapshot.json ({exc}); "
                    "is `python -m repro serve --metrics-port` running?",
                    file=sys.stderr,
                )
                return 1
            text = render_frame(frame)
            if ns.once:
                sys.stdout.write(text)
                return 0
            sys.stdout.write(_CLEAR + text)
            sys.stdout.flush()
            time.sleep(ns.interval)
    except KeyboardInterrupt:
        print()
        return 0
