"""A tiny metrics HTTP endpoint over engine telemetry.

``python -m repro serve --metrics-port P`` starts one of these next to
the engine: a stdlib :class:`~http.server.ThreadingHTTPServer` on its
own daemon thread serving

* ``GET /metrics`` — Prometheus text exposition
  (:func:`repro.obs.promexport.render_prometheus`), what a Prometheus
  scraper or plain ``curl`` reads;
* ``GET /snapshot.json`` — the full JSON telemetry frame
  (:meth:`~repro.obs.telemetry.EngineTelemetry.snapshot`), what
  ``python -m repro top`` polls.

Every request takes a fresh snapshot; nothing is cached, nothing on the
engine hot path blocks on a scrape (snapshots read counters and the
engine's stats lock only).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.promexport import render_prometheus

__all__ = ["MetricsServer"]


class _Handler(BaseHTTPRequestHandler):
    # The telemetry object is attached to the *server* by MetricsServer.
    server: "ThreadingHTTPServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        telemetry = getattr(self.server, "telemetry", None)
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = render_prometheus(telemetry).encode()
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/snapshot.json":
            frame = (
                telemetry.snapshot()
                if telemetry is not None and telemetry.enabled
                else {"type": "snapshot", "enabled": False}
            )
            body = (json.dumps(frame) + "\n").encode()
            ctype = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics)")
            return
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # scrapes are high-frequency; stay quiet


class MetricsServer:
    """Serve one telemetry's ``/metrics`` + ``/snapshot.json`` over HTTP.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` —
    what the tests use); the server thread is a daemon, and ``close()``
    (or the context manager) shuts it down deterministically.
    """

    def __init__(self, telemetry: Any, *, host: str = "127.0.0.1",
                 port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.telemetry = telemetry  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="metrics-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL, e.g. ``http://127.0.0.1:9464``."""
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving and join the server thread."""
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
