"""Job records and client-facing handles for the persistent engine.

A **job** is one SPMD function execution multiplexed onto the engine's
resident rank pool: the unit that used to be an entire ``spmd_run`` —
fresh threads, fresh world and all — becomes a record that borrows pool
ranks for its duration.  :class:`JobHandle` is the client's view: wait,
cancel, fetch the :class:`~repro.runtime.executor.SpmdResult`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Sequence

from repro.errors import SpmdTimeout

__all__ = ["JobHandle"]

#: Job lifecycle states (the engine moves jobs left to right; "cancelled"
#: can be entered from "pending" or, via abort, from "running";
#: "retrying" loops a failed attempt back to "pending" under a
#: RetryPolicy).
JOB_STATES = (
    "pending", "running", "retrying", "done", "failed", "cancelled",
)


class _Job:
    """Internal per-job record; all scheduling fields are guarded by the
    engine's lock, all completion fields by ``lock``/the done event."""

    __slots__ = (
        "job_id", "fn", "args", "nprocs", "cost_model", "record_events",
        "isolate_payloads", "timeout", "tracer", "fault_plan", "label",
        "status", "cancelled", "timed_out", "timeout_error", "lock",
        "done_event", "world", "members", "returns", "failures",
        "failure_states", "ranks_left", "t0", "result", "error",
        "lifecycle", "virtual_seconds",
        # Self-healing fields (engine/resilience.py):
        "retry_policy", "attempt", "fault_plan_source", "last_error",
        "allow_shrink", "requested_nprocs", "session", "admitted_at",
        "is_probe",
    )

    def __init__(
        self,
        job_id: int,
        fn: Callable[..., Any],
        args: Sequence[Any],
        nprocs: int,
        *,
        cost_model: Any,
        record_events: bool,
        isolate_payloads: bool,
        timeout: float | None,
        tracer: Any,
        fault_plan: Any,
        label: str | None,
    ):
        self.job_id = job_id
        self.fn = fn
        self.args = tuple(args)
        self.nprocs = nprocs
        self.cost_model = cost_model
        self.record_events = record_events
        self.isolate_payloads = isolate_payloads
        self.timeout = timeout
        self.tracer = tracer
        self.fault_plan = fault_plan
        self.label = label if label is not None else getattr(
            fn, "__name__", None
        )
        self.status = "pending"
        self.cancelled = False
        self.timed_out = False
        self.timeout_error: SpmdTimeout | None = None
        self.lock = threading.Lock()
        self.done_event = threading.Event()
        self.world = None  # JobWorld, set at dispatch
        self.members: tuple[int, ...] = ()
        self.returns: list[Any] = []
        self.failures: dict[int, BaseException] = {}
        self.failure_states: list[dict] | None = None
        self.ranks_left = 0
        self.t0 = 0.0
        self.result = None  # SpmdResult on success
        self.error: BaseException | None = None  # raised by JobHandle.result
        #: JobLifecycle stamps when the engine has telemetry enabled;
        #: None on the telemetry-off (allocation-free) path.
        self.lifecycle = None
        self.virtual_seconds = 0.0  # simulated makespan, set at finalize
        #: RetryPolicy, or None when failures are terminal on the first
        #: attempt (the pre-resilience contract).
        self.retry_policy = None
        self.attempt = 1  # 1-based; bumped at each retry re-admission
        #: What submit() was given as fault_plan: None, a static plan,
        #: or a callable attempt -> plan.  ``fault_plan`` holds the plan
        #: *resolved for the current attempt*.
        self.fault_plan_source = fault_plan
        self.last_error: BaseException | None = None
        self.allow_shrink = False
        self.requested_nprocs = nprocs  # nprocs may shrink per attempt
        self.session: str | None = None
        self.admitted_at = 0.0  # perf_counter at (re-)admission
        #: Internal supervisor health probes bypass all job accounting.
        self.is_probe = False

    def start(self, parent_world, members: tuple[int, ...]) -> None:
        """Bind the job to its pool placement (engine lock held).

        Re-callable: a retried attempt starts over with a **fresh**
        :class:`~repro.runtime.world.JobWorld` (new clocks, membership,
        abort flag, base cid) and cleared failure state, which is what
        makes a successful retry bit-identical to a fault-free run.
        """
        from repro.runtime.world import JobWorld

        self.failures = {}
        self.failure_states = None
        self.members = tuple(members)
        self.world = JobWorld(
            parent_world,
            self.members,
            cost_model=self.cost_model,
            record_events=self.record_events,
            isolate_payloads=self.isolate_payloads,
            tracer=self.tracer,
            fault_plan=self.fault_plan,
        )
        self.returns = [None] * self.nprocs
        self.ranks_left = self.nprocs
        self.status = "running"
        self.t0 = time.perf_counter()


class JobHandle:
    """The client's view of one submitted job.

    Mirrors the ``spmd_run`` contract: :meth:`result` returns the exact
    :class:`~repro.runtime.executor.SpmdResult` a standalone run of the
    same function would have produced, or raises the same
    :class:`~repro.errors.SpmdError` / :class:`~repro.errors.SpmdTimeout`.
    """

    def __init__(self, job: _Job, engine) -> None:
        self._job = job
        self._engine = engine

    # -- introspection ------------------------------------------------------

    @property
    def job_id(self) -> int:
        """Engine-unique id, in submission order."""
        return self._job.job_id

    @property
    def label(self) -> str | None:
        """The submit-time label (defaults to the function's name)."""
        return self._job.label

    @property
    def status(self) -> str:
        """One of ``pending | running | retrying | done | failed |
        cancelled``."""
        return self._job.status

    @property
    def attempt(self) -> int:
        """Which attempt (1-based) the job is on — above 1 only under a
        :class:`~repro.engine.resilience.RetryPolicy`."""
        return self._job.attempt

    @property
    def lifecycle(self):
        """The job's wall-clock :class:`~repro.obs.telemetry.JobLifecycle`
        stamps, or None when the engine runs without telemetry."""
        return self._job.lifecycle

    def done(self) -> bool:
        """True once the job has completed, failed or been cancelled."""
        return self._job.done_event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job completes; True unless ``timeout`` expired."""
        return self._job.done_event.wait(timeout)

    # -- control ------------------------------------------------------------

    def cancel(self) -> bool:
        """Cancel the job.  A pending job is withdrawn from the queue; a
        running job is aborted (its ranks unwind and the pool ranks are
        reclaimed).  Returns False if the job had already finished."""
        return self._engine._cancel_job(self._job)

    def result(self, timeout: float | None = None):
        """Block for the job's :class:`SpmdResult`.

        ``timeout`` defaults to the job's submit-time wall-clock budget,
        preserving ``spmd_run``'s deadlock guard: on expiry the job is
        aborted and :class:`~repro.errors.SpmdTimeout` is raised with the
        stuck ranks' diagnostics.  Raises
        :class:`~repro.errors.SpmdError` if any rank failed and
        :class:`~repro.errors.JobCancelled` if the job was cancelled.
        """
        job = self._job
        budget = job.timeout if timeout is None else timeout
        if not job.done_event.wait(budget):
            if job.world is None or job.status in ("pending", "retrying"):
                # Not currently on any ranks: either never dispatched
                # (queue stuck) or parked in retry backoff.  Aborting a
                # world would be meaningless — withdraw the job instead.
                self._engine._cancel_job(job)
                raise SpmdTimeout(
                    f"job {job.job_id} did not complete within {budget} s "
                    f"(queued or awaiting retry, attempt {job.attempt}); "
                    f"cancelled"
                )
            states = job.world.rank_states()
            err = SpmdTimeout(
                f"SPMD run did not finish within {budget} s "
                f"(possible deadlock); aborted",
                rank_states=states,
            )
            with job.lock:
                job.timed_out = True
                job.timeout_error = err
            job.world.abort()
            job.done_event.wait(5.0)
            raise err
        if job.error is not None:
            raise job.error
        return job.result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobHandle(id={self.job_id}, label={self.label!r}, "
            f"status={self.status!r})"
        )
