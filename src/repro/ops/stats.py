"""Streaming statistics as global-view operators.

``MeanVarOp`` computes count/mean/variance in one reduction using
Welford's streaming update for the accumulate phase and the Chan
et al. pairwise-combination formula for the combine phase — a textbook
example of the paper's point that the *state* type (count, mean, M2) can
differ from both the input type (a number) and the output type (a
statistics record).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.operator import ReduceScanOp

__all__ = ["MeanVarState", "MeanVarResult", "MeanVarOp"]


class MeanVarState:
    """Welford accumulator: n, mean, and M2 = sum of squared deviations."""

    __slots__ = ("n", "mean", "m2")

    def __init__(self, n: int = 0, mean: float = 0.0, m2: float = 0.0):
        self.n = n
        self.mean = mean
        self.m2 = m2

    def transfer_nbytes(self) -> int:
        return 24

    def __repr__(self) -> str:  # pragma: no cover
        return f"MeanVarState(n={self.n}, mean={self.mean}, m2={self.m2})"


@dataclass(frozen=True)
class MeanVarResult:
    """The reduction's output record."""

    n: int
    mean: float
    variance: float  # population variance (ddof=0); nan when n == 0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))


class MeanVarOp(ReduceScanOp):
    """Count, mean and population variance in a single reduction."""

    commutative = True

    @property
    def name(self) -> str:
        return "meanvar"

    def ident(self) -> MeanVarState:
        return MeanVarState()

    def accum(self, state: MeanVarState, x) -> MeanVarState:
        state.n += 1
        delta = x - state.mean
        state.mean += delta / state.n
        state.m2 += delta * (x - state.mean)
        return state

    def combine(self, s1: MeanVarState, s2: MeanVarState) -> MeanVarState:
        if s2.n == 0:
            return s1
        if s1.n == 0:
            s1.n, s1.mean, s1.m2 = s2.n, s2.mean, s2.m2
            return s1
        n = s1.n + s2.n
        delta = s2.mean - s1.mean
        s1.mean += delta * s2.n / n
        s1.m2 += s2.m2 + delta * delta * (s1.n * s2.n / n)
        s1.n = n
        return s1

    def accum_block(self, state: MeanVarState, values) -> MeanVarState:
        n = len(values)
        if n == 0:
            return state
        arr = np.asarray(values, dtype=np.float64)
        block = MeanVarState(
            n=n,
            mean=float(arr.mean()),
            m2=float(((arr - arr.mean()) ** 2).sum()),
        )
        return self.combine(state, block)

    def gen(self, state: MeanVarState) -> MeanVarResult:
        if state.n == 0:
            return MeanVarResult(0, float("nan"), float("nan"))
        return MeanVarResult(state.n, state.mean, state.m2 / state.n)
