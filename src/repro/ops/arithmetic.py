"""Built-in arithmetic operators in global-view form.

These are the ``sum``/``product``/``min``/``max`` every high-level
language bakes in; expressing them through the same
:class:`~repro.core.operator.ReduceScanOp` protocol as user operators
demonstrates the paper's point that built-ins are just the degenerate
case (input type == state type == output type) — and gives the tests a
family of operators whose answers NumPy can check independently.

All four vectorize both phases: ``accum_block`` uses the ufunc's
``reduce`` and ``scan_block`` its ``accumulate``, so large local blocks
cost O(n) NumPy work, not O(n) interpreter iterations (the accumulate
phase "should be optimized", §3).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.operator import ReduceScanOp

__all__ = ["SumOp", "ProdOp", "MinOp", "MaxOp", "UfuncOp"]


class UfuncOp(ReduceScanOp):
    """A global-view operator defined by a binary NumPy ufunc and an
    identity value.  State, input and output types coincide."""

    commutative = True
    elementwise = True  # a ufunc combines per element; states may be segmented

    def __init__(self, ufunc: np.ufunc, identity_value: Any, name: str):
        self._ufunc = ufunc
        self._identity_value = identity_value
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    @property
    def identity_value(self) -> Any:
        return self._identity_value

    def ident(self):
        return self._identity_value

    def kernel_signature(self) -> tuple:
        # Distinct ufuncs under one class (raw UfuncOp instances) must
        # not share an elementwise kernel.
        return (type(self), self._ufunc)

    def accum(self, state, x):
        return self._ufunc(state, x)

    def combine(self, s1, s2):
        return self._ufunc(s1, s2)

    def accum_block(self, state, values):
        if len(values) == 0:
            return state
        arr = np.asarray(values)
        return self._ufunc(state, self._ufunc.reduce(arr))

    def scan_block(self, state, values, *, exclusive: bool):
        n = len(values)
        if n == 0:
            return [], state
        arr = np.asarray(values)
        inclusive = self._ufunc(state, self._ufunc.accumulate(arr))
        final = inclusive[-1]
        if exclusive:
            out = np.concatenate(([state], inclusive[:-1]))
            return list(out), final
        return list(inclusive), final


class SumOp(UfuncOp):
    """Global-view sum; identity 0."""

    def __init__(self, identity_value: Any = 0):
        super().__init__(np.add, identity_value, "sum")


class ProdOp(UfuncOp):
    """Global-view product; identity 1."""

    def __init__(self, identity_value: Any = 1):
        super().__init__(np.multiply, identity_value, "prod")


class MinOp(UfuncOp):
    """Global-view minimum; identity +inf (or the dtype's max).

    Pass e.g. ``MinOp(np.iinfo(np.int64).max)`` for pure-integer data
    where an inf identity would upcast.
    """

    def __init__(self, identity_value: Any = np.inf):
        super().__init__(np.minimum, identity_value, "min")


class MaxOp(UfuncOp):
    """Global-view maximum; identity -inf (or the dtype's min)."""

    def __init__(self, identity_value: Any = -np.inf):
        super().__init__(np.maximum, identity_value, "max")
