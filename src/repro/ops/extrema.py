"""The ``extrema`` operator: k largest **and** k smallest values with
their global locations, in one reduction.

This is the operator the paper's NAS MG case study calls for (§4.2):
ZRAN3 needs "the ten largest numbers and their locations ... along with
the ten smallest numbers and their locations", which the F+MPI original
computes with *forty* reductions and the F+RSMPI version with *one*
user-defined reduction "similar to the mink and mini reductions".

Input elements are ``(value, location)`` pairs; ``accum_block`` also
accepts an ``(n, 2)`` array and vectorizes the selection with
``lexsort``.  Ties on value resolve to the smaller location, so results
are independent of the data distribution.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.operator import ReduceScanOp
from repro.errors import OperatorError
from repro.util.sizing import TransferSized

__all__ = ["ExtremaState", "ExtremaKLocOp", "MinKLocOp", "MaxKLocOp"]


class ExtremaState(TransferSized):
    """Up to k (value, loc) rows for each extreme, kept canonically
    sorted: top by (-value, loc), bottom by (value, loc)."""

    __slots__ = ("top", "bot")

    def __init__(self, top: np.ndarray, bot: np.ndarray):
        self.top = top  # shape (<=k, 2): k largest
        self.bot = bot  # shape (<=k, 2): k smallest

    def transfer_nbytes(self) -> int:
        return int(self.top.nbytes + self.bot.nbytes)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ExtremaState(top={self.top.tolist()}, bot={self.bot.tolist()})"


def _select_top(rows: np.ndarray, k: int) -> np.ndarray:
    """The k largest rows, sorted by (-value, loc)."""
    if len(rows) == 0:
        return rows.reshape(0, 2)
    order = np.lexsort((rows[:, 1], -rows[:, 0]))
    return rows[order[:k]]


def _select_bot(rows: np.ndarray, k: int) -> np.ndarray:
    """The k smallest rows, sorted by (value, loc)."""
    if len(rows) == 0:
        return rows.reshape(0, 2)
    order = np.lexsort((rows[:, 1], rows[:, 0]))
    return rows[order[:k]]


def _prefilter(arr: np.ndarray, k: int, *, largest: bool) -> np.ndarray:
    """Cut an (n, 2) block down to exactly the k extreme rows using
    O(n) partitions, with value ties resolved by the smaller location
    (so the cut never changes the final, distribution-independent
    answer).  Returns unsorted rows; callers re-sort."""
    n = len(arr)
    if n <= k:
        return arr
    vals = arr[:, 0]
    if largest:
        thresh = np.partition(vals, n - k)[n - k]
        strict = arr[vals > thresh]
    else:
        thresh = np.partition(vals, k - 1)[k - 1]
        strict = arr[vals < thresh]
    need = k - len(strict)
    ties = arr[vals == thresh]
    if need <= 0:  # unreachable: strict keeps at most k-1 rows; defensive
        ties = ties[:0]
    elif len(ties) > need:
        # smallest locations win among tied values
        ties = ties[np.argpartition(ties[:, 1], need - 1)[:need]]
    return np.concatenate([strict, ties])


class ExtremaKLocOp(ReduceScanOp):
    """k largest and k smallest values with locations, in one reduction.

    The output is a pair of ``(k, 2)`` arrays ``(top, bot)``:
    ``top[j] = (j-th largest value, its location)`` and
    ``bot[j] = (j-th smallest value, its location)``.
    """

    commutative = True

    def __init__(self, k: int):
        if k < 1:
            raise OperatorError(f"extrema needs k >= 1, got {k}")
        self.k = int(k)

    @property
    def name(self) -> str:
        return f"extrema(k={self.k})"

    def ident(self) -> ExtremaState:
        empty = np.empty((0, 2), dtype=np.float64)
        return ExtremaState(empty, empty.copy())

    def accum(self, state: ExtremaState, x: Any) -> ExtremaState:
        row = np.asarray([[x[0], x[1]]], dtype=np.float64)
        state.top = _select_top(np.concatenate([state.top, row]), self.k)
        state.bot = _select_bot(np.concatenate([state.bot, row]), self.k)
        return state

    def combine(self, s1: ExtremaState, s2: ExtremaState) -> ExtremaState:
        s1.top = _select_top(np.concatenate([s1.top, s2.top]), self.k)
        s1.bot = _select_bot(np.concatenate([s1.bot, s2.bot]), self.k)
        return s1

    def accum_block(self, state: ExtremaState, values) -> ExtremaState:
        n = len(values)
        if n == 0:
            return state
        arr = (
            values.astype(np.float64, copy=False)
            if isinstance(values, np.ndarray)
            else np.asarray(values, dtype=np.float64)
        )
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise OperatorError(
                f"extrema expects (value, loc) pairs; got shape {arr.shape}"
            )
        state.top = _select_top(
            np.concatenate([state.top, _prefilter(arr, self.k, largest=True)]),
            self.k,
        )
        state.bot = _select_bot(
            np.concatenate([state.bot, _prefilter(arr, self.k, largest=False)]),
            self.k,
        )
        return state

    def gen(self, state: ExtremaState) -> tuple[np.ndarray, np.ndarray]:
        return state.top.copy(), state.bot.copy()


class _OneSidedKLocOp(ReduceScanOp):
    """Shared machinery for MinKLocOp/MaxKLocOp: k extreme (value, loc)
    rows on one side only (half the state traffic of ExtremaKLocOp)."""

    commutative = True
    _largest: bool

    def __init__(self, k: int):
        if k < 1:
            raise OperatorError(f"k-extrema needs k >= 1, got {k}")
        self.k = int(k)

    def _select(self, rows: np.ndarray) -> np.ndarray:
        if self._largest:
            return _select_top(rows, self.k)
        return _select_bot(rows, self.k)

    def ident(self) -> np.ndarray:
        return np.empty((0, 2), dtype=np.float64)

    def accum(self, state: np.ndarray, x: Any) -> np.ndarray:
        row = np.asarray([[x[0], x[1]]], dtype=np.float64)
        return self._select(np.concatenate([state, row]))

    def combine(self, s1: np.ndarray, s2: np.ndarray) -> np.ndarray:
        return self._select(np.concatenate([s1, s2]))

    def accum_block(self, state: np.ndarray, values) -> np.ndarray:
        if len(values) == 0:
            return state
        arr = (
            values.astype(np.float64, copy=False)
            if isinstance(values, np.ndarray)
            else np.asarray(values, dtype=np.float64)
        )
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise OperatorError(
                f"k-extrema expects (value, loc) pairs; got shape {arr.shape}"
            )
        cut = _prefilter(arr, self.k, largest=self._largest)
        return self._select(np.concatenate([state, cut]))

    def gen(self, state: np.ndarray) -> np.ndarray:
        return state.copy()


class MinKLocOp(_OneSidedKLocOp):
    """The k smallest values with their locations, sorted ascending —
    ``mink`` and ``mini`` merged, as the paper's §4.2 suggests
    ("a single user-defined reduction, similar to the mink and mini
    reductions")."""

    _largest = False

    @property
    def name(self) -> str:
        return f"minkloc(k={self.k})"


class MaxKLocOp(_OneSidedKLocOp):
    """The k largest values with their locations, sorted descending."""

    _largest = True

    @property
    def name(self) -> str:
        return f"maxkloc(k={self.k})"
