"""Collection-building operators: set union and ordered concatenation.

Reductions need not shrink data to scalars; these operators build
*collections*, rounding out the library:

* :class:`UnionOp` — distinct elements (a set union; commutative).
  ``DistinctCountOp`` is its counting cousin.
* :class:`ConcatOp` — the ordered concatenation of all elements.  The
  canonical **non-commutative** reduction (it literally *is* the global
  order), and a useful oracle in tests: any order-preserving combining
  schedule must reproduce the original sequence exactly.
"""

from __future__ import annotations

from typing import Any

from repro.core.operator import ReduceScanOp
from repro.util.sizing import payload_nbytes

__all__ = ["UnionOp", "DistinctCountOp", "ConcatOp"]


class UnionOp(ReduceScanOp):
    """The set of distinct elements (elements must be hashable)."""

    commutative = True

    @property
    def name(self) -> str:
        return "union"

    def ident(self) -> set:
        return set()

    def accum(self, state: set, x: Any) -> set:
        state.add(x)
        return state

    def combine(self, s1: set, s2: set) -> set:
        s1 |= s2
        return s1

    def accum_block(self, state: set, values) -> set:
        state.update(values.tolist() if hasattr(values, "tolist") else values)
        return state

    def gen(self, state: set) -> frozenset:
        return frozenset(state)

    def state_eq(self, s1: set, s2: set) -> bool:
        return s1 == s2


class DistinctCountOp(UnionOp):
    """Number of distinct elements (exact; state is the set itself)."""

    @property
    def name(self) -> str:
        return "distinct_count"

    def gen(self, state: set) -> int:
        return len(state)


class ConcatOp(ReduceScanOp):
    """The ordered concatenation of all elements, as a list.

    Non-commutative by construction; scanning with it yields each
    position's prefix of the global sequence (an expensive but perfectly
    legal scan — useful for oracle testing).
    """

    commutative = False

    @property
    def name(self) -> str:
        return "concat"

    def ident(self) -> list:
        return []

    def accum(self, state: list, x: Any) -> list:
        state.append(x)
        return state

    def combine(self, s1: list, s2: list) -> list:
        s1.extend(s2)
        return s1

    def accum_block(self, state: list, values) -> list:
        state.extend(values.tolist() if hasattr(values, "tolist") else values)
        return state

    def gen(self, state: list) -> list:
        return list(state)
