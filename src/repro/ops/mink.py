"""The ``mink`` operator: the k smallest values (paper Listings 1 and 4).

The global-view formulation (Listing 4) is the paper's flagship example:
the *input* type is a single integer, the *state* is a vector of k
values kept sorted from high to low (so ``v[0]`` is the largest retained
minimum and the cheapest to evict), and the *output* is the state vector.
In the local-view formulation (Listing 1) the user had to build those
sorted vectors by hand before calling into the reduction — the exact
boilerplate the global view absorbs.

Two accumulate styles are provided for the paper's §3 performance note
("Alternative functions that translate the input values into state
values rather than accumulate the input values into state values would
result in worse performance"):

* :class:`MinKOp` — accumulate style (per-element ``accum``, vectorized
  ``accum_block``);
* :class:`TranslateMinKOp` — translate style: every input becomes a full
  k-state that is then ``combine``-d.  Same results, deliberately the
  slower design; benchmarked by EX-ACC.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.operator import ReduceScanOp
from repro.errors import OperatorError

__all__ = ["MinKOp", "MaxKOp", "TranslateMinKOp"]


class MinKOp(ReduceScanOp):
    """Keep the k smallest values; state sorted high-to-low (Listing 4).

    Parameters
    ----------
    k:
        How many minima to keep.
    sentinel:
        The "no value yet" filler, Listing 4's ``in_t.max``.  Defaults to
        +inf; pass ``np.iinfo(...).max`` to stay in integer dtype.
    """

    commutative = True

    def __init__(self, k: int, sentinel: Any = np.inf):
        if k < 1:
            raise OperatorError(f"mink needs k >= 1, got {k}")
        self.k = int(k)
        self.sentinel = sentinel

    @property
    def name(self) -> str:
        return f"mink(k={self.k})"

    def ident(self) -> np.ndarray:
        dtype = np.asarray(self.sentinel).dtype
        return np.full(self.k, self.sentinel, dtype=dtype)

    def _insert(self, state: np.ndarray, x: Any) -> np.ndarray:
        """Listing 4's insertion: evict the largest kept minimum (v[0]),
        bubble the new value down to restore high-to-low order."""
        if x < state[0]:
            state[0] = x
            for i in range(1, self.k):
                if state[i - 1] < state[i]:
                    state[i - 1], state[i] = state[i], state[i - 1]
        return state

    def accum(self, state: np.ndarray, x: Any) -> np.ndarray:
        return self._insert(state, x)

    def combine(self, s1: np.ndarray, s2: np.ndarray) -> np.ndarray:
        # Listing 4's combine: insert the other state's elements.
        for x in s2:
            s1 = self._insert(s1, x)
        return s1

    def accum_block(self, state: np.ndarray, values) -> np.ndarray:
        if len(values) == 0:
            return state
        arr = np.asarray(values)
        pool = np.concatenate([state, arr.ravel()])
        if len(pool) > self.k:
            pool = np.partition(pool, self.k - 1)[: self.k]
        state[:] = np.sort(pool)[::-1]  # high-to-low, like the listing
        return state

    def gen(self, state: np.ndarray) -> np.ndarray:
        # Copy: scan outputs must not alias the still-mutating state.
        return state.copy()


class MaxKOp(MinKOp):
    """Keep the k largest values; state sorted low-to-high."""

    def __init__(self, k: int, sentinel: Any = -np.inf):
        super().__init__(k, sentinel)

    @property
    def name(self) -> str:
        return f"maxk(k={self.k})"

    def _insert(self, state: np.ndarray, x: Any) -> np.ndarray:
        if x > state[0]:
            state[0] = x
            for i in range(1, self.k):
                if state[i - 1] > state[i]:
                    state[i - 1], state[i] = state[i], state[i - 1]
        return state

    def accum_block(self, state: np.ndarray, values) -> np.ndarray:
        if len(values) == 0:
            return state
        arr = np.asarray(values)
        pool = np.concatenate([state, arr.ravel()])
        if len(pool) > self.k:
            pool = np.partition(pool, len(pool) - self.k)[-self.k :]
        state[:] = np.sort(pool)  # low-to-high: state[0] cheapest to evict
        return state


class TranslateMinKOp(MinKOp):
    """The translate-style mink: each input element is first *translated*
    into a full k-element state, then combined — the design the paper
    warns against.  Results are identical to :class:`MinKOp`."""

    def accum(self, state: np.ndarray, x: Any) -> np.ndarray:
        singleton = self.ident()  # translate: input -> state ...
        singleton[0] = x
        return self.combine(state, singleton)  # ... then combine states

    def accum_block(self, state: np.ndarray, values) -> np.ndarray:
        # Deliberately per-element: the whole point is the overhead of
        # building and combining a k-state per input value.
        for x in values:
            state = self.accum(state, x)
        return state

    @property
    def name(self) -> str:
        return f"translate_mink(k={self.k})"
