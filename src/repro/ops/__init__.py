"""The operator library: every example operator from the paper plus the
library-grade generalizations (paper §3.1, §4.2; RSMPI's "library of
operators")."""

from repro.ops.arithmetic import MaxOp, MinOp, ProdOp, SumOp, UfuncOp
from repro.ops.collect import ConcatOp, DistinctCountOp, UnionOp
from repro.ops.counts import CountsOp
from repro.ops.extrema import ExtremaKLocOp, ExtremaState, MaxKLocOp, MinKLocOp
from repro.ops.fused import FusedOp
from repro.ops.histogram import HistogramOp
from repro.ops.location import MaxiOp, MiniOp
from repro.ops.logical import AllOp, AnyOp, BandOp, BorOp, BxorOp, XorOp
from repro.ops.mink import MaxKOp, MinKOp, TranslateMinKOp
from repro.ops.recurrence import AffineOp, LogSumExpOp, linear_recurrence
from repro.ops.segmented import SegmentedOp
from repro.ops.sorted_op import (
    DishonestCommutativeSortedOp,
    SortedOp,
    SortedState,
)
from repro.ops.stats import MeanVarOp, MeanVarResult, MeanVarState
from repro.ops.topk import TopKOp

__all__ = [
    "SumOp",
    "ProdOp",
    "MinOp",
    "MaxOp",
    "UfuncOp",
    "AllOp",
    "AnyOp",
    "XorOp",
    "BandOp",
    "BorOp",
    "BxorOp",
    "MiniOp",
    "MaxiOp",
    "MinKOp",
    "MaxKOp",
    "TranslateMinKOp",
    "CountsOp",
    "UnionOp",
    "DistinctCountOp",
    "ConcatOp",
    "HistogramOp",
    "SortedOp",
    "SortedState",
    "DishonestCommutativeSortedOp",
    "MeanVarOp",
    "MeanVarResult",
    "MeanVarState",
    "ExtremaKLocOp",
    "ExtremaState",
    "MinKLocOp",
    "MaxKLocOp",
    "FusedOp",
    "SegmentedOp",
    "TopKOp",
    "AffineOp",
    "linear_recurrence",
    "LogSumExpOp",
]
