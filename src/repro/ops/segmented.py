"""Segmented scans as a user-defined operator.

Blelloch's vector model (which the paper cites as the case for scan as a
primary primitive) leans heavily on *segmented* scans: the data carries
head flags that restart the running reduction at every segment boundary.
The classic trick turns any base operator ⊕ into a segmented one over
(value, flag) pairs::

    (v1, f1) ⊕' (v2, f2) = (v2 if f2 else v1 ⊕ v2,  f1 or f2)

⊕' is associative whenever ⊕ is, but **never commutative** — a nice
stress test for the library's non-commutative schedules, and a
demonstration that the global-view protocol composes: this operator is
generic over any inner binary function.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core.operator import ReduceScanOp

__all__ = ["SegmentedOp"]


class _SegState:
    __slots__ = ("value", "flag", "seen")

    def __init__(self, value: Any, flag: bool, seen: bool):
        self.value = value
        self.flag = flag  # does the covered run contain a segment head?
        self.seen = seen

    def transfer_nbytes(self) -> int:
        return 16

    def __repr__(self) -> str:  # pragma: no cover
        return f"_SegState(value={self.value!r}, flag={self.flag}, seen={self.seen})"


class SegmentedOp(ReduceScanOp):
    """Segmented reduction/scan over ``(value, head_flag)`` elements.

    Parameters
    ----------
    fn:
        The inner binary function (associative).
    identity_value:
        Its identity; used for empty prefixes and for the exclusive
        scan's output at segment heads.
    """

    commutative = False  # segmented combination is inherently ordered

    def __init__(
        self, fn: Callable[[Any, Any], Any], identity_value: Any, name: str = "seg"
    ):
        self._fn = fn
        self._identity_value = identity_value
        self._name = name

    @property
    def name(self) -> str:
        return f"segmented({self._name})"

    def ident(self) -> _SegState:
        return _SegState(self._identity_value, False, False)

    def accum(self, state: _SegState, x) -> _SegState:
        v, f = x[0], bool(x[1])
        if f or not state.seen:
            # A head (or the very first element) restarts the running value.
            state.value = v if f else self._fn(state.value, v)
            state.flag = state.flag or f
        else:
            state.value = self._fn(state.value, v)
        state.seen = True
        return state

    def accum_block(self, state: _SegState, values) -> _SegState:
        """Block accumulate without per-element state dispatch: everything
        before the *last* segment head is dead (heads restart the running
        value), so locate it once and fold only the tail."""
        n = len(values)
        if n == 0:
            return state
        flags = np.fromiter(
            (bool(x[1]) for x in values), dtype=bool, count=n
        )
        heads = np.flatnonzero(flags)
        if heads.size:
            h = int(heads[-1])
            acc = values[h][0]
            for i in range(h + 1, n):
                acc = self._fn(acc, values[i][0])
            state.flag = True
        else:
            acc = state.value
            for x in values:
                acc = self._fn(acc, x[0])
        state.value = acc
        state.seen = True
        return state

    def combine(self, s1: _SegState, s2: _SegState) -> _SegState:
        if not s2.seen:
            return s1
        if not s1.seen:
            s1.value, s1.flag, s1.seen = s2.value, s2.flag, True
            return s1
        if s2.flag:
            s1.value = s2.value
        else:
            s1.value = self._fn(s1.value, s2.value)
        s1.flag = s1.flag or s2.flag
        s1.seen = True
        return s1

    def red_gen(self, state: _SegState):
        """The reduction of the *last* segment."""
        return state.value

    def scan_gen(self, state: _SegState, x):
        """Inclusive-style generate: the running value of the element's
        segment (the state was already restarted by ``accum`` at heads).
        Exclusive scans need head-awareness, handled in ``scan_block``."""
        return state.value if state.seen else self._identity_value

    def scan_block(self, state: _SegState, values, *, exclusive: bool):
        out = []
        if exclusive:
            for x in values:
                # An element at a segment head has no same-segment
                # predecessors: its exclusive output is the identity.
                if bool(x[1]) or not state.seen:
                    out.append(self._identity_value)
                else:
                    out.append(state.value)
                state = self.accum(state, x)
        else:
            for x in values:
                state = self.accum(state, x)
                out.append(state.value)
        return out, state