"""Operator fusion: several global-view operators in one reduction.

The operator-level counterpart of §2.1's aggregation: where aggregation
amortizes message overhead across many instances of the *same*
reduction, fusion amortizes it across *different* operators over the
same data — one accumulate pass, one combine tree, one message per tree
edge carrying all the fused states.

This is exactly the transformation the paper's MG case study performs by
hand ("a single user-defined reduction, similar to the mink and mini
reductions"): ``FusedOp([MinKOp(10), MaxKOp(10)])`` mechanizes it.

The fused state is a tuple of member states; results are tuples of
member results.  Non-commutativity is contagious: the fusion is
commutative only if every member is.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.operator import ReduceScanOp
from repro.errors import OperatorError
from repro.util.sizing import payload_nbytes

__all__ = ["FusedOp"]


class _FusedState(list):
    """Tuple-of-states with a wire size that sums the members."""

    def transfer_nbytes(self) -> int:
        return sum(payload_nbytes(s) for s in self)


class FusedOp(ReduceScanOp):
    """Run several operators over the same input in one reduction/scan.

    >>> op = FusedOp([SumOp(), MinKOp(3), MeanVarOp()])
    >>> total, mins, stats = global_reduce(comm, op, values)

    Every member sees every input element; members needing different
    *views* of the element can wrap it via the optional ``projections``
    (one callable per member, applied to each element before accum).
    """

    def __init__(
        self,
        members: Sequence[ReduceScanOp],
        *,
        projections: Sequence[Any] | None = None,
    ):
        members = list(members)
        if not members:
            raise OperatorError("FusedOp needs at least one member operator")
        for m in members:
            if not isinstance(m, ReduceScanOp):
                raise OperatorError(
                    f"FusedOp members must be ReduceScanOp, got "
                    f"{type(m).__name__}"
                )
        if projections is not None and len(projections) != len(members):
            raise OperatorError(
                f"got {len(projections)} projections for {len(members)} "
                "members"
            )
        self.members = members
        self.projections = list(projections) if projections else None
        self.commutative = all(m.commutative for m in members)

    @property
    def name(self) -> str:
        inner = ", ".join(m.name for m in self.members)
        return f"fused({inner})"

    def _view(self, i: int, x: Any) -> Any:
        if self.projections is None or self.projections[i] is None:
            return x
        return self.projections[i](x)

    def ident(self) -> _FusedState:
        return _FusedState(m.ident() for m in self.members)

    def pre_accum(self, state: _FusedState, x: Any) -> _FusedState:
        for i, m in enumerate(self.members):
            state[i] = m.pre_accum(state[i], self._view(i, x))
        return state

    def accum(self, state: _FusedState, x: Any) -> _FusedState:
        for i, m in enumerate(self.members):
            state[i] = m.accum(state[i], self._view(i, x))
        return state

    def post_accum(self, state: _FusedState, x: Any) -> _FusedState:
        for i, m in enumerate(self.members):
            state[i] = m.post_accum(state[i], self._view(i, x))
        return state

    def accum_block(self, state: _FusedState, values) -> _FusedState:
        if self.projections is None:
            for i, m in enumerate(self.members):
                state[i] = m.accum_block(state[i], values)
            return state
        for i, m in enumerate(self.members):
            proj = self.projections[i]
            view = values if proj is None else [proj(x) for x in values]
            state[i] = m.accum_block(state[i], view)
        return state

    def combine(self, s1: _FusedState, s2: _FusedState) -> _FusedState:
        for i, m in enumerate(self.members):
            s1[i] = m.combine(s1[i], s2[i])
        return s1

    def red_gen(self, state: _FusedState) -> tuple:
        return tuple(m.red_gen(state[i]) for i, m in enumerate(self.members))

    def scan_gen(self, state: _FusedState, x: Any) -> tuple:
        return tuple(
            m.scan_gen(state[i], self._view(i, x))
            for i, m in enumerate(self.members)
        )
