"""The ``sorted`` operator (paper Listings 7 and 8): is the conceptual
global array in non-decreasing order?

This is the paper's canonical **non-commutative** operator and the
kernel of its NAS IS case study (§4.1): the accumulate phase tracks each
rank's first and last elements and whether the local run is sorted; the
combine phase checks that adjacent runs are individually sorted *and*
meet in order at the boundary.  Reordering combines gives wrong answers,
which is precisely the paper's commutative-flag experiment ("the program
did fail to verify that the array was sorted (as expected)") —
reproduced here by :class:`DishonestCommutativeSortedOp`.

The state mirrors Listing 8's ``struct { first, last, status }`` with a
``seen`` flag instead of INT_MAX/INT_MIN sentinels so the operator works
for any ordered element type (floats, strings, tuples...).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.operator import ReduceScanOp

__all__ = ["SortedState", "SortedOp", "DishonestCommutativeSortedOp"]


class SortedState:
    """first/last/status of a contiguous run; ``seen=False`` == identity."""

    __slots__ = ("first", "last", "status", "seen")

    def __init__(self):
        self.first: Any = None
        self.last: Any = None
        self.status: bool = True
        self.seen: bool = False

    def transfer_nbytes(self) -> int:
        return 24  # two boundary elements + one flag word

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"SortedState(first={self.first!r}, last={self.last!r}, "
            f"status={self.status}, seen={self.seen})"
        )


class SortedOp(ReduceScanOp):
    """True iff the global data is in non-decreasing order (Listing 7)."""

    commutative = False  # Listing 7: ``param commutative = false``

    @property
    def name(self) -> str:
        return "sorted"

    def ident(self) -> SortedState:
        return SortedState()

    def pre_accum(self, state: SortedState, x) -> SortedState:
        state.first = x
        return state

    def accum(self, state: SortedState, x) -> SortedState:
        if not state.seen:
            if state.first is None:
                state.first = x
            state.seen = True
        elif state.last > x:
            state.status = False
        state.last = x
        return state

    def post_accum(self, state: SortedState, x) -> SortedState:
        state.last = x
        return state

    def combine(self, s1: SortedState, s2: SortedState) -> SortedState:
        if not s2.seen:
            return s1
        if not s1.seen:
            s1.first, s1.last = s2.first, s2.last
            s1.status = s2.status
            s1.seen = True
            return s1
        s1.status = s1.status and s2.status and (s1.last <= s2.first)
        s1.last = s2.last
        return s1

    def accum_block(self, state: SortedState, values) -> SortedState:
        """Single-pass vectorized check for NumPy blocks — one memory
        reference per element, the RSMPI "scalar improvement" of §4.1."""
        n = len(values)
        if n == 0:
            return state
        if not isinstance(values, np.ndarray):
            for x in values:
                state = self.accum(state, x)
            return state
        first, last = values[0], values[-1]
        ok = bool(np.all(values[1:] >= values[:-1])) if n > 1 else True
        if not state.seen:
            if state.first is None:
                state.first = first
            state.seen = True
            state.status = state.status and ok
        else:
            state.status = state.status and ok and (state.last <= first)
        state.last = last
        return state

    def gen(self, state: SortedState) -> bool:
        return bool(state.status)


class DishonestCommutativeSortedOp(SortedOp):
    """The §4.1 ablation: the sorted operator dishonestly flagged
    commutative.  The runtime is then licensed to reorder combines, and
    the reduction's boundary checks compare the wrong runs — results are
    expected to be wrong whenever the schedule actually reorders."""

    commutative = True

    @property
    def name(self) -> str:
        return "sorted(flagged-commutative)"
