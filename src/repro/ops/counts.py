"""The ``counts`` operator (paper Listing 6 and §3.1.3).

Given elements that each carry a category in ``base..base+k-1`` (the
paper's particles in octants 1..8), the *reduction* returns the count of
elements per category and the *scan* returns each element's rank within
its category — the paper's worked example: scanning octants
``[6,7,6,3,8,2,8,4,8,3]`` yields counts ``[0,1,2,1,0,2,1,3]`` and
rankings ``[1,1,2,1,1,1,2,1,3,2]``.

This operator is the paper's showcase for *different generate functions
for reduce and scan* (``red_gen`` returns the whole count vector;
``scan_gen`` returns only the current element's category count).
"""

from __future__ import annotations

import numpy as np

from repro.core.operator import ReduceScanOp
from repro.errors import OperatorError

__all__ = ["CountsOp"]


class CountsOp(ReduceScanOp):
    """Count elements per category; scan ranks elements within categories.

    Parameters
    ----------
    k:
        Number of categories.
    base:
        Smallest category label (the paper's octants start at 1).
    """

    commutative = True
    elementwise = True  # count vectors combine per category

    def __init__(self, k: int, base: int = 1):
        if k < 1:
            raise OperatorError(f"counts needs k >= 1 categories, got {k}")
        self.k = int(k)
        self.base = int(base)

    @property
    def name(self) -> str:
        return f"counts(k={self.k})"

    def _index(self, x) -> int:
        i = int(x) - self.base
        if not 0 <= i < self.k:
            raise OperatorError(
                f"counts: category {x} outside [{self.base}, "
                f"{self.base + self.k - 1}]"
            )
        return i

    def ident(self) -> np.ndarray:
        return np.zeros(self.k, dtype=np.int64)

    def accum(self, state: np.ndarray, x) -> np.ndarray:
        state[self._index(x)] += 1
        return state

    def combine(self, s1: np.ndarray, s2: np.ndarray) -> np.ndarray:
        s1 += s2
        return s1

    def accum_block(self, state: np.ndarray, values) -> np.ndarray:
        if len(values) == 0:
            return state
        arr = np.asarray(values, dtype=np.int64) - self.base
        if arr.min() < 0 or arr.max() >= self.k:
            bad = values[int(np.argmax((arr < 0) | (arr >= self.k)))]
            raise OperatorError(
                f"counts: category {bad} outside [{self.base}, "
                f"{self.base + self.k - 1}]"
            )
        state += np.bincount(arr, minlength=self.k)
        return state

    def red_gen(self, state: np.ndarray) -> np.ndarray:
        return state.copy()

    def scan_gen(self, state: np.ndarray, x) -> int:
        # The element's rank within its own category (Listing 6:
        # ``return v[x]``): inclusive scans count the element itself,
        # exclusive scans count strictly-earlier same-category elements.
        return int(state[self._index(x)])
