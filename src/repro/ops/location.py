"""The ``mini``/``maxi`` operators: extreme value **and its location**
(paper Listing 5, and MPI's MINLOC/MAXLOC).

Input elements are ``(value, location)`` pairs — in Chapel this is the
tuple expression ``[i in 1..n] (A(i), i)`` — and the output is the pair
for the extreme value.  Ties resolve to the smaller location (MPI-1
§4.9.3 semantics), which keeps results independent of the distribution.

``accum_block`` accepts either a sequence of pairs or an ``(n, 2)`` NumPy
array and vectorizes with ``argmin``/``argmax``.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.core.operator import ReduceScanOp

__all__ = ["MiniOp", "MaxiOp"]


class _LocState:
    """Mutable (value, location) state; location None means empty."""

    __slots__ = ("val", "loc")

    def __init__(self, val: float, loc: int | None):
        self.val = val
        self.loc = loc

    def transfer_nbytes(self) -> int:
        return 16  # one double + one index

    def __repr__(self) -> str:  # pragma: no cover
        return f"_LocState(val={self.val}, loc={self.loc})"


class _ExtremeLocOp(ReduceScanOp):
    commutative = True

    #: -1 for mini (minimize), +1 for maxi (maximize)
    _sign: int = -1
    _sentinel: float = math.inf

    def ident(self):
        return _LocState(self._sentinel, None)

    def _better(self, val: Any, loc: int, state: "_LocState") -> bool:
        if state.loc is None:
            return True
        if self._sign < 0:
            if val < state.val:
                return True
        else:
            if val > state.val:
                return True
        return val == state.val and loc < state.loc

    def accum(self, state: "_LocState", x: Sequence[Any]) -> "_LocState":
        val, loc = x[0], int(x[1])
        if self._better(val, loc, state):
            state.val, state.loc = val, loc
        return state

    def combine(self, s1: "_LocState", s2: "_LocState") -> "_LocState":
        if s2.loc is not None and self._better(s2.val, s2.loc, s1):
            s1.val, s1.loc = s2.val, s2.loc
        return s1

    def accum_block(self, state, values):
        n = len(values)
        if n == 0:
            return state
        arr = values if isinstance(values, np.ndarray) else np.asarray(values)
        vals, locs = arr[:, 0], arr[:, 1]
        best = vals.min() if self._sign < 0 else vals.max()
        # smallest location among the tied extreme values
        loc = int(locs[vals == best].min())
        return self.accum(state, (best, loc))

    def gen(self, state: "_LocState"):
        return (state.val, state.loc)


class MiniOp(_ExtremeLocOp):
    """Minimum value and its location (Listing 5's ``mini``).

    >>> # var (val, loc) = mini(integer) reduce [i in 1..n] (A(i), i);
    """

    _sign = -1
    _sentinel = math.inf

    @property
    def name(self) -> str:
        return "mini"


class MaxiOp(_ExtremeLocOp):
    """Maximum value and its location."""

    _sign = 1
    _sentinel = -math.inf

    @property
    def name(self) -> str:
        return "maxi"
