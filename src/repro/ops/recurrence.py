"""Linear recurrences by scan, and a stable log-sum-exp reduction.

:class:`AffineOp` is the classic demonstration that scans solve more
than sums: composing affine maps ``f(y) = a*y + b`` is associative, so
the first-order recurrence

    y_i = a_i * y_{i-1} + b_i

falls out of one (non-commutative!) global-view scan over the ``(a, b)``
coefficient pairs — IIR filters, compound interest, Horner evaluation
and Fibonacci all ride this monoid (Blelloch's recurrence-solving
argument, which the paper's generalized scans make directly usable).

:class:`LogSumExpOp` reduces ``log(sum(exp(x_i)))`` without overflow by
carrying ``(running max, scaled sum)`` state — a staple of statistical
computing that needs exactly the input/state/output type split the
global-view protocol provides.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.core.operator import ReduceScanOp
from repro.core.scan import global_scan
from repro.mpi.comm import Communicator

__all__ = ["AffineOp", "linear_recurrence", "LogSumExpOp"]


class AffineOp(ReduceScanOp):
    """Composition of affine maps ``y -> a*y + b``.

    Input elements and states are ``(a, b)`` pairs; ``combine(f, g)``
    is "apply f first, then g" — matching the global order, hence
    **non-commutative**.  The scan's prefix at position i is the
    composition of maps 1..i; apply it to ``y0`` for the recurrence
    value.
    """

    commutative = False

    def ident(self) -> tuple[float, float]:
        return (1.0, 0.0)  # the identity map

    def accum(self, state, x):
        a1, b1 = state
        a2, b2 = float(x[0]), float(x[1])
        return (a1 * a2, b1 * a2 + b2)

    def combine(self, s1, s2):
        a1, b1 = s1
        a2, b2 = s2
        return (a1 * a2, b1 * a2 + b2)

    def gen(self, state):
        return state

    @staticmethod
    def apply(state, y0: float) -> float:
        """Evaluate the composed map at ``y0``."""
        a, b = state
        return a * y0 + b


def linear_recurrence(
    comm: Communicator,
    a_local: np.ndarray,
    b_local: np.ndarray,
    y0: float,
) -> np.ndarray:
    """Solve ``y_i = a_i * y_{i-1} + b_i`` across ranks; returns this
    rank's block of y values (``y_1 .. y_n`` for global inputs 1..n).

    One non-commutative global-view scan; every rank's answers are
    bit-identical to the sequential loop (tested).
    """
    a_local = np.asarray(a_local, dtype=np.float64)
    b_local = np.asarray(b_local, dtype=np.float64)
    pairs = np.column_stack([a_local, b_local])
    prefixes = global_scan(comm, AffineOp(), pairs)
    return np.array([AffineOp.apply(f, y0) for f in prefixes])


class LogSumExpOp(ReduceScanOp):
    """Numerically stable ``log(sum(exp(x)))`` in one reduction.

    State is ``(m, s)`` with invariant ``logsumexp = m + log(s)`` and
    ``m`` the running maximum, so no intermediate ever overflows.
    """

    commutative = True

    def ident(self) -> tuple[float, float]:
        return (-math.inf, 0.0)

    def accum(self, state, x):
        return self.combine(state, (float(x), 1.0))

    def combine(self, s1, s2):
        m1, v1 = s1
        m2, v2 = s2
        if v1 == 0.0:
            return s2
        if v2 == 0.0:
            return s1
        m = max(m1, m2)
        return (m, v1 * math.exp(m1 - m) + v2 * math.exp(m2 - m))

    def accum_block(self, state, values: Sequence[Any] | np.ndarray):
        if len(values) == 0:
            return state
        arr = np.asarray(values, dtype=np.float64)
        m = float(arr.max())
        s = float(np.exp(arr - m).sum())
        return self.combine(state, (m, s))

    def red_gen(self, state) -> float:
        m, s = state
        if s == 0.0:
            return -math.inf
        return m + math.log(s)

    def scan_gen(self, state, x) -> float:
        return self.red_gen(state)
