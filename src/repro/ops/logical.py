"""Logical and bitwise operators in global-view form.

Mirrors MPI's six logical/bitwise built-ins through the ReduceScanOp
protocol.  ``AllOp``/``AnyOp`` are the idiomatic aliases (Chapel spells
them ``&&``/``||`` reductions); the bitwise family works on integers.
"""

from __future__ import annotations

import numpy as np

from repro.core.operator import ReduceScanOp
from repro.ops.arithmetic import UfuncOp

__all__ = ["AllOp", "AnyOp", "XorOp", "BandOp", "BorOp", "BxorOp"]


class AllOp(UfuncOp):
    """Logical AND over booleans (MPI_LAND); identity True."""

    def __init__(self):
        super().__init__(np.logical_and, True, "all")

    def gen(self, state) -> bool:
        return bool(state)


class AnyOp(UfuncOp):
    """Logical OR over booleans (MPI_LOR); identity False."""

    def __init__(self):
        super().__init__(np.logical_or, False, "any")

    def gen(self, state) -> bool:
        return bool(state)


class XorOp(UfuncOp):
    """Logical XOR (parity) over booleans (MPI_LXOR); identity False."""

    def __init__(self):
        super().__init__(np.logical_xor, False, "xor")

    def gen(self, state) -> bool:
        return bool(state)


class BandOp(UfuncOp):
    """Bitwise AND over integers (MPI_BAND); identity all-ones."""

    def __init__(self, dtype=np.int64):
        ones = np.array(-1, dtype=dtype) if np.issubdtype(dtype, np.signedinteger) \
            else np.array(np.iinfo(dtype).max, dtype=dtype)
        super().__init__(np.bitwise_and, ones, "band")


class BorOp(UfuncOp):
    """Bitwise OR over integers (MPI_BOR); identity 0."""

    def __init__(self, dtype=np.int64):
        super().__init__(np.bitwise_or, np.array(0, dtype=dtype), "bor")


class BxorOp(UfuncOp):
    """Bitwise XOR over integers (MPI_BXOR); identity 0."""

    def __init__(self, dtype=np.int64):
        super().__init__(np.bitwise_xor, np.array(0, dtype=dtype), "bxor")
