"""Generic top-k over arbitrary (keyed) items.

Where :class:`~repro.ops.mink.MinKOp` mirrors the paper's integer
listing, ``TopKOp`` is the library-grade generalization: any items, an
optional key function, largest or smallest, deterministic tie-breaking
by the items' own ordering.  It demonstrates that the state type can be
a rich container (a sorted list of items) unrelated to the input type.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Sequence

from repro.core.operator import ReduceScanOp
from repro.errors import OperatorError

__all__ = ["TopKOp"]


class TopKOp(ReduceScanOp):
    """Keep the k extreme items by key.

    Parameters
    ----------
    k:
        Number of items to keep.
    key:
        Ranking key; defaults to the item itself.
    largest:
        True for top-k (default), False for bottom-k.

    Notes
    -----
    Ties on the key resolve by the items' own ordering (smallest item
    wins), making results independent of the distribution; items must
    therefore be totally ordered among themselves.  The state is the
    sorted list of kept items (best first).
    """

    commutative = True

    def __init__(
        self,
        k: int,
        *,
        key: Callable[[Any], Any] | None = None,
        largest: bool = True,
    ):
        if k < 1:
            raise OperatorError(f"topk needs k >= 1, got {k}")
        self.k = int(k)
        self.key = key if key is not None else (lambda item: item)
        self.largest = bool(largest)

    @property
    def name(self) -> str:
        kind = "top" if self.largest else "bottom"
        return f"{kind}k(k={self.k})"

    def _sort_key(self, item: Any):
        # best-first ordering with deterministic tie-break on the item
        k = self.key(item)
        return (_Neg(k), item) if self.largest else (k, item)

    def ident(self) -> list:
        return []

    def accum(self, state: list, x: Any) -> list:
        state.append(x)
        state.sort(key=self._sort_key)
        del state[self.k :]
        return state

    def combine(self, s1: list, s2: list) -> list:
        merged = list(heapq.merge(s1, s2, key=self._sort_key))
        del merged[self.k :]
        s1[:] = merged
        return s1

    def accum_block(self, state: list, values: Sequence[Any]) -> list:
        if len(values) == 0:
            return state
        pool = list(state)
        pool.extend(values)
        pool.sort(key=self._sort_key)
        state[:] = pool[: self.k]
        return state

    def gen(self, state: list) -> list:
        return list(state)


class _Neg:
    """Order-reversing wrapper for arbitrary comparable keys."""

    __slots__ = ("v",)

    def __init__(self, v: Any):
        self.v = v

    def __lt__(self, other: "_Neg") -> bool:
        return other.v < self.v

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Neg) and other.v == self.v

    def __hash__(self) -> int:  # pragma: no cover - completeness
        return hash(("_Neg", self.v))
