"""Histogram over real-valued data: ``counts`` generalized to bin edges.

Same shape as Listing 6's counts operator, but the category of an
element is computed from bin edges (half-open bins, NumPy ``histogram``
convention) — the kind of "library of operators" RSMPI anticipates users
building.
"""

from __future__ import annotations

import numpy as np

from repro.core.operator import ReduceScanOp
from repro.errors import OperatorError

__all__ = ["HistogramOp"]


class HistogramOp(ReduceScanOp):
    """Count elements into bins delimited by ``edges``.

    Bins follow ``np.histogram``: ``edges[i] <= x < edges[i+1]``, last
    bin closed.  Out-of-range elements raise unless ``clip=True``, which
    clamps them into the end bins.
    """

    commutative = True
    elementwise = True  # bin-count vectors combine per bin

    def __init__(self, edges, *, clip: bool = False):
        edges = np.asarray(edges, dtype=np.float64)
        if edges.ndim != 1 or len(edges) < 2:
            raise OperatorError(
                f"histogram needs at least 2 bin edges, got {edges.shape}"
            )
        if not np.all(np.diff(edges) > 0):
            raise OperatorError("histogram edges must be strictly increasing")
        self.edges = edges
        self.nbins = len(edges) - 1
        self.clip = bool(clip)

    @property
    def name(self) -> str:
        return f"histogram(nbins={self.nbins})"

    def _bin(self, x: float) -> int:
        if x == self.edges[-1]:
            return self.nbins - 1  # last bin is closed
        i = int(np.searchsorted(self.edges, x, side="right")) - 1
        if not 0 <= i < self.nbins:
            if self.clip:
                return min(max(i, 0), self.nbins - 1)
            raise OperatorError(
                f"histogram: value {x} outside "
                f"[{self.edges[0]}, {self.edges[-1]}]"
            )
        return i

    def ident(self) -> np.ndarray:
        return np.zeros(self.nbins, dtype=np.int64)

    def accum(self, state: np.ndarray, x) -> np.ndarray:
        state[self._bin(float(x))] += 1
        return state

    def combine(self, s1: np.ndarray, s2: np.ndarray) -> np.ndarray:
        s1 += s2
        return s1

    def accum_block(self, state: np.ndarray, values) -> np.ndarray:
        if len(values) == 0:
            return state
        arr = np.asarray(values, dtype=np.float64)
        if not self.clip:
            if arr.min() < self.edges[0] or arr.max() > self.edges[-1]:
                raise OperatorError(
                    "histogram: values outside "
                    f"[{self.edges[0]}, {self.edges[-1]}]"
                )
        else:
            arr = np.clip(arr, self.edges[0], self.edges[-1])
        counts, _ = np.histogram(arr, bins=self.edges)
        state += counts
        return state

    def red_gen(self, state: np.ndarray) -> np.ndarray:
        return state.copy()

    def scan_gen(self, state: np.ndarray, x) -> int:
        """Rank of the element within its bin (counts-style scan)."""
        return int(state[self._bin(float(x))])
