"""``python -m repro`` — tour and profiling entry points.

* ``python -m repro [NPROCS] [--trace PATH]`` — the 30-second tour of
  the reproduction: runs the paper's worked examples on simulated ranks
  and points at the deeper entry points.  ``--trace`` additionally
  captures a span profile of the tour and writes it as a Chrome/Perfetto
  trace.
* ``python -m repro profile TARGET [--ranks N] [--format F] [--out P]``
  — run an example script or a benchmark under the phase tracer and
  export the profile (text report, JSONL records, or a Chrome trace).
* ``python -m repro tune [--out P] [--bench P] [--dry-run] ...`` — re-fit
  the collective algorithm decision table (:mod:`repro.mpi.tuning`) by
  simulating every candidate algorithm over a rank/payload grid; emits
  the fitted table as JSON plus a BENCH json of the full measurement
  grid.
* ``python -m repro chaos [--seeds N] [--ranks P ...] [--smoke]
  [--ops NAME ...] [--out P]`` — soak-test every operator in
  ``repro.ops`` under random seeded fault plans (lossy links and
  combine-phase fail-stops) and check results against failure-free
  baselines (:mod:`repro.faults.chaos`).
* ``python -m repro serve [--ranks P] [--clients N]
  [--jobs-per-client K] [--job-ranks G] [--payload E]
  [--metrics-port P] [--linger S] [--snapshot-out PATH]
  [--trace-out PATH] [--chaos]`` — multi-tenant engine demo: N
  concurrent clients submit job streams to one persistent
  :class:`repro.engine.Engine` (:mod:`repro.engine.serve`); with
  ``--metrics-port`` the engine's telemetry is served as Prometheus
  text on ``/metrics`` and as JSON frames on ``/snapshot.json``;
  ``--chaos`` adds a chaos tenant (fault-injected jobs under a
  RetryPolicy) to demo the self-healing layer.
* ``python -m repro top [--port P | --url URL] [--interval S]
  [--once]`` — live terminal dashboard over a serving engine's
  telemetry endpoint (:mod:`repro.engine.top`): queue depth, per-rank
  utilization bars, effective capacity / quarantined ranks / degraded
  status, lifecycle counters, p50/p95/p99 latency tails.
"""

from __future__ import annotations

import argparse
import json
import runpy
import sys
from pathlib import Path

import numpy as np

from repro import __version__, global_reduce, global_scan, spmd_run
from repro.mpi import tuning
from repro.ops import CountsOp, MinKOp, SortedOp, SumOp
from repro.rsmpi import RSMPI_Reduceall, load_operator

PAPER_DATA = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3]


def _split(data, p, r):
    base, extra = divmod(len(data), p)
    lo = r * base + min(r, extra)
    return data[lo : lo + base + (1 if r < extra else 0)]


def _cmd_tour(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="30-second tour of the reproduction.",
    )
    parser.add_argument(
        "nprocs", nargs="?", type=int, default=4,
        help="simulated ranks to run on (default 4)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="capture a span profile of the tour and write it as a "
        "Chrome/Perfetto trace to PATH",
    )
    ns = parser.parse_args(argv)
    nprocs = ns.nprocs

    print(f"repro {__version__} — Deitz et al., PPoPP 2006, reproduced")
    print(f"paper data {PAPER_DATA} over {nprocs} simulated ranks:\n")

    def program(comm):
        local = _split(PAPER_DATA, comm.size, comm.rank)
        total = global_reduce(comm, SumOp(), local)
        running = global_scan(comm, SumOp(), local)
        counts = global_reduce(comm, CountsOp(8), local)
        ranks = global_scan(comm, CountsOp(8), local)
        ordered = global_reduce(comm, SortedOp(), local)
        mins = global_reduce(
            comm, MinKOp(3, np.iinfo(np.int64).max), local
        )
        dsl_sorted = RSMPI_Reduceall(load_operator("sorted"), local, comm)
        return total, running, counts, ranks, ordered, mins, dsl_sorted

    tracer = None
    if ns.trace is not None:
        from repro.obs import Tracer

        tracer = Tracer()
    res = spmd_run(program, nprocs, tracer=tracer)
    total, _, counts, _, ordered, mins, dsl_sorted = res.returns[0]
    running = [v for r in res.returns for v in r[1]]
    ranks = [v for r in res.returns for v in r[3]]
    print(f"  sum reduce        : {total}")
    print(f"  sum scan          : {[int(v) for v in running]}")
    print(f"  counts reduce     : {counts.tolist()}")
    print(f"  counts scan       : {ranks}")
    print(f"  sorted? (native)  : {ordered}")
    print(f"  sorted? (DSL op)  : {bool(dsl_sorted)}")
    print(f"  mink(3)           : {mins.tolist()}")
    print(f"\nsimulated time: {res.time * 1e6:.1f} us, "
          f"{res.summary_trace.n_sends} messages, deterministic")
    if tracer is not None:
        from repro.analysis import write_chrome_trace

        write_chrome_trace(tracer, ns.trace)
        print(f"trace written to {ns.trace} (open in Perfetto)")
    print("\nnext: python examples/quickstart.py | "
          "python -m repro profile examples/quickstart.py | "
          "pytest benchmarks/ --benchmark-only | docs/")
    return 0


def _is_benchmark_target(target: str) -> bool:
    """A pytest node id or file under ``benchmarks/`` (vs. a script)."""
    base = Path(target.split("::", 1)[0])
    if base.name.startswith("bench_") or base.name == "benchmarks":
        return True
    return "benchmarks" in base.parts


def _cmd_profile(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Run an example script or benchmark under the phase "
        "tracer and export the profile.",
    )
    parser.add_argument(
        "target",
        help="an example script (path to a .py file) or a benchmark "
        "(pytest path/node id under benchmarks/)",
    )
    parser.add_argument(
        "args", nargs="*",
        help="extra argv passed to an example script",
    )
    parser.add_argument(
        "--ranks", type=int, default=None,
        help="force every spmd_run in the target onto this many ranks",
    )
    parser.add_argument(
        "--format", dest="fmt", choices=("chrome", "jsonl", "text"),
        default="text", help="export format (default: text)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: stdout for text, "
        "<target>.profile.jsonl for jsonl, <target>.trace.json for chrome)",
    )
    ns = parser.parse_args(argv)

    from repro.obs import Tracer, dumps_jsonl, format_text_report, profiling

    if not Path(ns.target.split("::", 1)[0]).exists():
        parser.error(f"target not found: {ns.target}")

    tracer = Tracer()
    with profiling(tracer, ranks=ns.ranks):
        if _is_benchmark_target(ns.target):
            import pytest

            rc = pytest.main(
                [ns.target, "-q", "-p", "no:cacheprovider", *ns.args]
            )
            if rc not in (0, pytest.ExitCode.NO_TESTS_COLLECTED):
                print(f"profile: target exited with pytest code {rc}",
                      file=sys.stderr)
        else:
            saved_argv = sys.argv
            sys.argv = [ns.target, *ns.args]
            try:
                runpy.run_path(ns.target, run_name="__main__")
            finally:
                sys.argv = saved_argv

    if not tracer.runs:
        print("profile: target completed but no spmd_run was traced",
              file=sys.stderr)
        return 1

    if ns.fmt == "text":
        text = format_text_report(tracer)
        if ns.out:
            Path(ns.out).write_text(text)
            print(f"profile written to {ns.out}")
        else:
            sys.stdout.write(text)
    elif ns.fmt == "jsonl":
        # The target's own stdout would corrupt a piped stream, so jsonl
        # always goes to a file.
        out = ns.out or (Path(ns.target.split("::", 1)[0]).stem
                         + ".profile.jsonl")
        Path(out).write_text(dumps_jsonl(tracer))
        print(f"profile written to {out}")
    else:  # chrome
        from repro.analysis import tracer_to_chrome_trace

        out = ns.out or (Path(ns.target.split("::", 1)[0]).stem
                         + ".trace.json")
        with open(out, "w") as f:
            json.dump(tracer_to_chrome_trace(tracer), f)
        print(f"chrome trace written to {out} (open in Perfetto)")
    return 0


def _cmd_tune(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro tune",
        description="Re-fit the collective algorithm decision table by "
        "simulating every candidate over a rank/payload grid.",
    )
    parser.add_argument(
        "--ranks", type=int, nargs="+", default=None, metavar="P",
        help="rank counts to fit over (default: %s)"
        % (tuning.DEFAULT_RANK_GRID,),
    )
    parser.add_argument(
        "--payloads", type=int, nargs="+", default=None, metavar="BYTES",
        help="payload sizes in bytes (default: 8 B .. 2 MiB, powers of 4)",
    )
    parser.add_argument(
        "--out", default="results/decision_table.json",
        help="where to write the fitted table "
        "(default: results/decision_table.json)",
    )
    parser.add_argument(
        "--bench", default="results/BENCH_tune_decision_table.json",
        help="where to write the full measurement grid "
        "(default: results/BENCH_tune_decision_table.json)",
    )
    parser.add_argument(
        "--topology", default=None, metavar="SPEC",
        help="fabric to fit against: 'flat' (default), 'multi_node:R' or "
        "'fat_tree:RxN[xO]' (repro.runtime.fabric.parse_topology); a "
        "non-flat fit adds the 'hierarchical' candidates and writes "
        "topology-suffixed output files",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="fit on a reduced grid and print the table without writing "
        "any files (CI smoke)",
    )
    ns = parser.parse_args(argv)

    topology = None
    if ns.topology is not None:
        from repro.runtime.fabric import parse_topology

        topology = parse_topology(ns.topology)
        if topology.is_flat:
            topology = None

    rank_grid = ns.ranks or tuning.DEFAULT_RANK_GRID
    payload_grid = ns.payloads or tuning.DEFAULT_PAYLOAD_GRID
    if ns.dry_run and ns.ranks is None and ns.payloads is None:
        rank_grid = (4, 8)
        payload_grid = tuple(8 * 16**k for k in range(4))
        if topology is not None:
            # A 2-node smoke cell so the hierarchical candidates are
            # exercised across the slow tier, not just degenerately.
            rpn = getattr(topology, "ranks_per_node", 4)
            rank_grid = (rpn, 2 * rpn)

    topo_sig = topology.signature if topology is not None else "flat"
    print(
        f"fitting decision table over ranks={list(rank_grid)}, "
        f"payloads={list(payload_grid)}, topology={topo_sig} ..."
    )
    table, report = tuning.fit_decision_table(
        rank_grid=rank_grid, payload_grid=payload_grid, topology=topology
    )
    print(json.dumps(table.to_dict(), indent=2))
    n_cells = sum(len(v) for v in report["grid"].values())
    print(f"({n_cells} simulated grid cells)")
    if ns.dry_run:
        print("dry run: nothing written")
        return 0
    if topology is not None:
        # Keep the flat table's filenames stable: per-fabric fits write
        # alongside them with the signature in the name.
        suffix = topo_sig.replace(":", "_").replace("x", "x")
        if ns.out == parser.get_default("out"):
            ns.out = f"results/decision_table_{suffix}.json"
        if ns.bench == parser.get_default("bench"):
            ns.bench = f"results/BENCH_tune_decision_table_{suffix}.json"
    out = Path(ns.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(table.to_dict(), indent=2) + "\n")
    bench = Path(ns.bench)
    bench.parent.mkdir(parents=True, exist_ok=True)
    bench.write_text(json.dumps(report, indent=2) + "\n")
    print(f"table written to {out}")
    print(f"measurement grid written to {bench}")
    print(
        "load it with repro.mpi.tuning.load_decision_table"
        f"({str(out)!r}) to make algorithm='auto' use it"
    )
    return 0


def _cmd_chaos(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Soak-test every operator under seeded fault plans "
        "and check results against failure-free baselines.",
    )
    parser.add_argument(
        "--seeds", type=int, default=20, metavar="N",
        help="number of seeds per (operator, size) cell (default: 20)",
    )
    parser.add_argument(
        "--seed-base", type=int, default=0, metavar="S",
        help="first seed; seeds are S..S+N-1 (default: 0)",
    )
    parser.add_argument(
        "--ranks", type=int, nargs="+", default=None, metavar="P",
        help="rank counts to test (default: 4 8 16)",
    )
    parser.add_argument(
        "--ops", nargs="+", default=None, metavar="NAME",
        help="restrict to these case names (default: all)",
    )
    parser.add_argument(
        "--modes", nargs="+", choices=("lossy", "failstop"), default=None,
        help="fault modes to run (default: both)",
    )
    parser.add_argument(
        "--elements", type=int, default=6, metavar="N",
        help="input elements per rank (default: 6)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced fixed grid for CI: 3 seeds x {4, 8} ranks",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the full per-trial results as JSON to PATH",
    )
    ns = parser.parse_args(argv)

    from dataclasses import asdict

    from repro.faults.chaos import (
        CHAOS_CASES,
        chaos_report_lines,
        run_chaos,
    )

    sizes = tuple(ns.ranks) if ns.ranks else (4, 8, 16)
    n_seeds = ns.seeds
    if ns.smoke and ns.ranks is None:
        sizes = (4, 8)
    if ns.smoke and ns.seeds == 20:
        n_seeds = 3
    seeds = range(ns.seed_base, ns.seed_base + n_seeds)
    cases = CHAOS_CASES
    if ns.ops:
        by_name = {c.name: c for c in CHAOS_CASES}
        unknown = [n for n in ns.ops if n not in by_name]
        if unknown:
            parser.error(
                f"unknown ops {unknown}; choose from {sorted(by_name)}"
            )
        cases = tuple(by_name[n] for n in ns.ops)
    modes = tuple(ns.modes) if ns.modes else ("lossy", "failstop")

    n_cells = len(cases) * len(sizes) * n_seeds * len(modes)
    print(
        f"chaos soak: {len(cases)} operators x ranks {list(sizes)} x "
        f"{n_seeds} seeds x modes {list(modes)} = {n_cells} trials"
    )
    results = run_chaos(
        seeds=list(seeds), sizes=sizes, n_per_rank=ns.elements,
        cases=cases, modes=modes,
    )
    print("\n".join(chaos_report_lines(results)))
    if ns.out:
        out = Path(ns.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps([asdict(r) for r in results], indent=2) + "\n"
        )
        print(f"per-trial results written to {out}")
    return 0 if all(r.ok for r in results) else 1


def main(argv: list[str] | None = None) -> int:
    """Dispatch to the tour, profiler, tuner, chaos soak, engine serve
    demo or telemetry dashboard; returns exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "profile":
        return _cmd_profile(argv[1:])
    if argv and argv[0] == "tune":
        return _cmd_tune(argv[1:])
    if argv and argv[0] == "chaos":
        return _cmd_chaos(argv[1:])
    if argv and argv[0] == "serve":
        from repro.engine.serve import run_serve

        return run_serve(argv[1:])
    if argv and argv[0] == "top":
        from repro.engine.top import run_top

        return run_top(argv[1:])
    return _cmd_tour(argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
