"""``python -m repro`` — tour and profiling entry points.

* ``python -m repro [NPROCS] [--trace PATH]`` — the 30-second tour of
  the reproduction: runs the paper's worked examples on simulated ranks
  and points at the deeper entry points.  ``--trace`` additionally
  captures a span profile of the tour and writes it as a Chrome/Perfetto
  trace.
* ``python -m repro profile TARGET [--ranks N] [--format F] [--out P]``
  — run an example script or a benchmark under the phase tracer and
  export the profile (text report, JSONL records, or a Chrome trace).
"""

from __future__ import annotations

import argparse
import json
import runpy
import sys
from pathlib import Path

import numpy as np

from repro import __version__, global_reduce, global_scan, spmd_run
from repro.ops import CountsOp, MinKOp, SortedOp, SumOp
from repro.rsmpi import RSMPI_Reduceall, load_operator

PAPER_DATA = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3]


def _split(data, p, r):
    base, extra = divmod(len(data), p)
    lo = r * base + min(r, extra)
    return data[lo : lo + base + (1 if r < extra else 0)]


def _cmd_tour(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="30-second tour of the reproduction.",
    )
    parser.add_argument(
        "nprocs", nargs="?", type=int, default=4,
        help="simulated ranks to run on (default 4)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="capture a span profile of the tour and write it as a "
        "Chrome/Perfetto trace to PATH",
    )
    ns = parser.parse_args(argv)
    nprocs = ns.nprocs

    print(f"repro {__version__} — Deitz et al., PPoPP 2006, reproduced")
    print(f"paper data {PAPER_DATA} over {nprocs} simulated ranks:\n")

    def program(comm):
        local = _split(PAPER_DATA, comm.size, comm.rank)
        total = global_reduce(comm, SumOp(), local)
        running = global_scan(comm, SumOp(), local)
        counts = global_reduce(comm, CountsOp(8), local)
        ranks = global_scan(comm, CountsOp(8), local)
        ordered = global_reduce(comm, SortedOp(), local)
        mins = global_reduce(
            comm, MinKOp(3, np.iinfo(np.int64).max), local
        )
        dsl_sorted = RSMPI_Reduceall(load_operator("sorted"), local, comm)
        return total, running, counts, ranks, ordered, mins, dsl_sorted

    tracer = None
    if ns.trace is not None:
        from repro.obs import Tracer

        tracer = Tracer()
    res = spmd_run(program, nprocs, tracer=tracer)
    total, _, counts, _, ordered, mins, dsl_sorted = res.returns[0]
    running = [v for r in res.returns for v in r[1]]
    ranks = [v for r in res.returns for v in r[3]]
    print(f"  sum reduce        : {total}")
    print(f"  sum scan          : {[int(v) for v in running]}")
    print(f"  counts reduce     : {counts.tolist()}")
    print(f"  counts scan       : {ranks}")
    print(f"  sorted? (native)  : {ordered}")
    print(f"  sorted? (DSL op)  : {bool(dsl_sorted)}")
    print(f"  mink(3)           : {mins.tolist()}")
    print(f"\nsimulated time: {res.time * 1e6:.1f} us, "
          f"{res.summary_trace.n_sends} messages, deterministic")
    if tracer is not None:
        from repro.analysis import write_chrome_trace

        write_chrome_trace(tracer, ns.trace)
        print(f"trace written to {ns.trace} (open in Perfetto)")
    print("\nnext: python examples/quickstart.py | "
          "python -m repro profile examples/quickstart.py | "
          "pytest benchmarks/ --benchmark-only | docs/")
    return 0


def _is_benchmark_target(target: str) -> bool:
    """A pytest node id or file under ``benchmarks/`` (vs. a script)."""
    base = Path(target.split("::", 1)[0])
    if base.name.startswith("bench_") or base.name == "benchmarks":
        return True
    return "benchmarks" in base.parts


def _cmd_profile(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Run an example script or benchmark under the phase "
        "tracer and export the profile.",
    )
    parser.add_argument(
        "target",
        help="an example script (path to a .py file) or a benchmark "
        "(pytest path/node id under benchmarks/)",
    )
    parser.add_argument(
        "args", nargs="*",
        help="extra argv passed to an example script",
    )
    parser.add_argument(
        "--ranks", type=int, default=None,
        help="force every spmd_run in the target onto this many ranks",
    )
    parser.add_argument(
        "--format", dest="fmt", choices=("chrome", "jsonl", "text"),
        default="text", help="export format (default: text)",
    )
    parser.add_argument(
        "--out", default=None,
        help="output path (default: stdout for text, "
        "<target>.profile.jsonl for jsonl, <target>.trace.json for chrome)",
    )
    ns = parser.parse_args(argv)

    from repro.obs import Tracer, dumps_jsonl, format_text_report, profiling

    if not Path(ns.target.split("::", 1)[0]).exists():
        parser.error(f"target not found: {ns.target}")

    tracer = Tracer()
    with profiling(tracer, ranks=ns.ranks):
        if _is_benchmark_target(ns.target):
            import pytest

            rc = pytest.main(
                [ns.target, "-q", "-p", "no:cacheprovider", *ns.args]
            )
            if rc not in (0, pytest.ExitCode.NO_TESTS_COLLECTED):
                print(f"profile: target exited with pytest code {rc}",
                      file=sys.stderr)
        else:
            saved_argv = sys.argv
            sys.argv = [ns.target, *ns.args]
            try:
                runpy.run_path(ns.target, run_name="__main__")
            finally:
                sys.argv = saved_argv

    if not tracer.runs:
        print("profile: target completed but no spmd_run was traced",
              file=sys.stderr)
        return 1

    if ns.fmt == "text":
        text = format_text_report(tracer)
        if ns.out:
            Path(ns.out).write_text(text)
            print(f"profile written to {ns.out}")
        else:
            sys.stdout.write(text)
    elif ns.fmt == "jsonl":
        # The target's own stdout would corrupt a piped stream, so jsonl
        # always goes to a file.
        out = ns.out or (Path(ns.target.split("::", 1)[0]).stem
                         + ".profile.jsonl")
        Path(out).write_text(dumps_jsonl(tracer))
        print(f"profile written to {out}")
    else:  # chrome
        from repro.analysis import tracer_to_chrome_trace

        out = ns.out or (Path(ns.target.split("::", 1)[0]).stem
                         + ".trace.json")
        with open(out, "w") as f:
            json.dump(tracer_to_chrome_trace(tracer), f)
        print(f"chrome trace written to {out} (open in Perfetto)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Dispatch to the tour or the profiler; returns exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "profile":
        return _cmd_profile(argv[1:])
    return _cmd_tour(argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
