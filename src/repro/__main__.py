"""``python -m repro`` — a 30-second tour of the reproduction.

Runs the paper's worked examples on simulated ranks and points at the
deeper entry points.  Handy as an install smoke test.
"""

from __future__ import annotations

import sys

import numpy as np

from repro import __version__, global_reduce, global_scan, spmd_run
from repro.ops import CountsOp, MinKOp, SortedOp, SumOp
from repro.rsmpi import RSMPI_Reduceall, load_operator

PAPER_DATA = [6, 7, 6, 3, 8, 2, 8, 4, 8, 3]


def _split(data, p, r):
    base, extra = divmod(len(data), p)
    lo = r * base + min(r, extra)
    return data[lo : lo + base + (1 if r < extra else 0)]


def main(argv: list[str] | None = None) -> int:
    """Run the tour on ``argv[0]`` ranks (default 4); returns exit code."""
    nprocs = int(argv[0]) if argv else 4
    print(f"repro {__version__} — Deitz et al., PPoPP 2006, reproduced")
    print(f"paper data {PAPER_DATA} over {nprocs} simulated ranks:\n")

    def program(comm):
        local = _split(PAPER_DATA, comm.size, comm.rank)
        total = global_reduce(comm, SumOp(), local)
        running = global_scan(comm, SumOp(), local)
        counts = global_reduce(comm, CountsOp(8), local)
        ranks = global_scan(comm, CountsOp(8), local)
        ordered = global_reduce(comm, SortedOp(), local)
        mins = global_reduce(
            comm, MinKOp(3, np.iinfo(np.int64).max), local
        )
        dsl_sorted = RSMPI_Reduceall(load_operator("sorted"), local, comm)
        return total, running, counts, ranks, ordered, mins, dsl_sorted

    res = spmd_run(program, nprocs)
    total, _, counts, _, ordered, mins, dsl_sorted = res.returns[0]
    running = [v for r in res.returns for v in r[1]]
    ranks = [v for r in res.returns for v in r[3]]
    print(f"  sum reduce        : {total}")
    print(f"  sum scan          : {[int(v) for v in running]}")
    print(f"  counts reduce     : {counts.tolist()}")
    print(f"  counts scan       : {ranks}")
    print(f"  sorted? (native)  : {ordered}")
    print(f"  sorted? (DSL op)  : {bool(dsl_sorted)}")
    print(f"  mink(3)           : {mins.tolist()}")
    print(f"\nsimulated time: {res.time * 1e6:.1f} us, "
          f"{res.summary_trace.n_sends} messages, deterministic")
    print("\nnext: python examples/quickstart.py | pytest benchmarks/ "
          "--benchmark-only | docs/")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
