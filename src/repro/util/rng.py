"""The NAS Parallel Benchmarks pseudo-random number generator (``randlc``).

The NPB generators (used by both IS and MG) are the 46-bit linear
congruential generator

    x_{k+1} = a * x_k  mod 2**46,        r_k = x_k * 2**-46

with the default multiplier ``a = 5**13 = 1220703125`` and default seed
``314159265``.  The generator has period 2**44 and supports O(log n)
jump-ahead because ``x_{k+n} = (a**n mod 2**46) * x_k mod 2**46``.

Two implementations are provided and tested against each other:

* :class:`Randlc` — an exact scalar generator using Python integers,
  mirroring the reference ``randlc`` routine one value at a time.
* :func:`randlc_array` — a vectorized generator that produces a block of
  values with NumPy ``uint64`` arithmetic.  A 46-bit modular product does
  not fit the naive ``uint64`` multiply, so the multiplication is split
  into 23-bit halves exactly as the Fortran ``vranlc`` does::

      a = a1*2**23 + a0,  x = x1*2**23 + x0
      t  = (a1*x0 + a0*x1) mod 2**23          # each product < 2**46
      x' = (t*2**23 + a0*x0) mod 2**46        # each term   < 2**46

  Every intermediate fits in 47 bits, hence in ``uint64``.

The vectorized path fills a block by log-doubling: given values for
indices ``[0, m)``, the values for ``[m, 2m)`` are the element-wise modular
product of ``a**m mod 2**46`` with the first block.  This performs
O(log n) vector passes instead of n scalar steps.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "RANDLC_A",
    "RANDLC_SEED",
    "MOD46",
    "Randlc",
    "randlc_pow",
    "randlc_skip",
    "randlc_array",
]

#: Default NPB multiplier, 5**13.
RANDLC_A: int = 1220703125

#: Default NPB seed.
RANDLC_SEED: int = 314159265

#: The modulus 2**46.
MOD46: int = 1 << 46

_R46: float = 0.5 ** 46
_MASK23 = np.uint64((1 << 23) - 1)
_MASK46 = np.uint64((1 << 46) - 1)
_SHIFT23 = np.uint64(23)


def randlc_pow(a: int, n: int) -> int:
    """Return ``a**n mod 2**46`` (the jump-ahead multiplier for n steps)."""
    if n < 0:
        raise ValueError(f"jump-ahead exponent must be non-negative, got {n}")
    return pow(a, n, MOD46)


def randlc_skip(seed: int, n: int, a: int = RANDLC_A) -> int:
    """Return the generator state after ``n`` steps from ``seed``.

    This is the O(log n) jump-ahead used to give each process an
    independent, reproducible slice of the global random stream.
    """
    return (randlc_pow(a, n) * seed) % MOD46


class Randlc:
    """Exact scalar NAS ``randlc`` generator.

    >>> rng = Randlc()
    >>> r = rng.next()           # one double in [0, 1)
    >>> rng2 = Randlc().skipped(1)
    >>> rng2.state == Randlc(seed=rng.state).state
    True
    """

    __slots__ = ("state", "a")

    def __init__(self, seed: int = RANDLC_SEED, a: int = RANDLC_A):
        if not (0 < seed < MOD46):
            raise ValueError(f"seed must be in (0, 2**46), got {seed}")
        if not (0 < a < MOD46):
            raise ValueError(f"multiplier must be in (0, 2**46), got {a}")
        self.state = int(seed)
        self.a = int(a)

    def next(self) -> float:
        """Advance one step and return a double in [0, 1)."""
        self.state = (self.a * self.state) % MOD46
        return self.state * _R46

    def next_n(self, n: int) -> list[float]:
        """Advance ``n`` steps, returning the n values (scalar loop)."""
        out = []
        s, a = self.state, self.a
        for _ in range(n):
            s = (a * s) % MOD46
            out.append(s * _R46)
        self.state = s
        return out

    def skip(self, n: int) -> None:
        """Jump the state forward by ``n`` steps in O(log n) time."""
        self.state = randlc_skip(self.state, n, self.a)

    def skipped(self, n: int) -> "Randlc":
        """Return a new generator whose state is ``n`` steps ahead."""
        g = Randlc(self.state, self.a)
        g.skip(n)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Randlc(state={self.state}, a={self.a})"


def _mulmod46(c1: np.uint64, c0: np.uint64, x: np.ndarray) -> np.ndarray:
    """Element-wise ``c * x mod 2**46`` for a 46-bit constant ``c`` split as
    ``c = c1*2**23 + c0`` and a ``uint64`` array ``x`` of 46-bit values."""
    x0 = x & _MASK23
    x1 = x >> _SHIFT23
    t = (c1 * x0 + c0 * x1) & _MASK23
    return ((t << _SHIFT23) + c0 * x0) & _MASK46


def randlc_array(
    n: int,
    seed: int = RANDLC_SEED,
    a: int = RANDLC_A,
    *,
    skip: int = 0,
) -> np.ndarray:
    """Return the next ``n`` randlc values after skipping ``skip`` steps.

    Equivalent to ``Randlc(seed).skipped(skip).next_n(n)`` but vectorized:
    O(log n) NumPy passes over the output buffer.

    Parameters
    ----------
    n:
        Number of values to produce.
    seed, a:
        Generator seed and multiplier.
    skip:
        Number of values of the stream to skip before the first returned
        value.  Lets each rank generate its block of a shared global
        stream independently.

    Returns
    -------
    numpy.ndarray of float64 values in [0, 1), shape ``(n,)``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n == 0:
        return np.empty(0, dtype=np.float64)
    start = randlc_skip(seed, skip + 1, a)  # state after producing value #skip
    states = np.empty(n, dtype=np.uint64)
    states[0] = start
    m = 1
    while m < n:
        step = min(m, n - m)
        c = randlc_pow(a, m)
        c1 = np.uint64(c >> 23)
        c0 = np.uint64(c & ((1 << 23) - 1))
        states[m : m + step] = _mulmod46(c1, c0, states[:step])
        m += step
    return states.astype(np.float64) * _R46
