"""Transfer semantics for the simulated message-passing substrate.

Two questions must be answered for every message payload:

1. **How many bytes does it occupy on the wire?**  The virtual-time cost
   model charges bandwidth per byte, so message sizes must reflect what a
   real MPI implementation would send (:func:`payload_nbytes`).

2. **How is it isolated from the sender?**  Ranks in this simulator are
   threads in one address space, but they model processes in *distinct*
   address spaces.  If a payload were delivered by reference, a receiver
   mutating its reduction state would corrupt the sender's copy — a bug
   class that cannot exist on real hardware.  :func:`copy_for_transfer`
   therefore deep-copies every payload at the send boundary.
"""

from __future__ import annotations

import copy
import pickle
from typing import Any

import numpy as np

from repro.errors import TransferError

__all__ = [
    "payload_nbytes",
    "copy_for_transfer",
    "ensure_transferable",
    "TransferSized",
    "TransferSafe",
]

_SCALAR_BYTES = 8
_PER_ITEM_OVERHEAD = 8


class TransferSafe:
    """Marker base/mixin for payloads that may cross the send boundary
    **by reference**.

    A class declares itself transfer-safe when its instances are
    immutable after construction (or are never mutated by receivers), so
    the address-space isolation copy is pure overhead.  The marker is the
    attribute ``__transfer_safe__ = True`` — subclassing this mixin is
    the convenient way to set it, but any class may set the attribute
    directly, and an instance may opt back out by setting it False.
    """

    __transfer_safe__ = True


class TransferSized:
    """Mixin for payload classes that know their own wire size.

    A class may define ``transfer_nbytes() -> int`` to report the number
    of bytes a real implementation would serialize for it; this lets
    operator states (e.g. a mink state of k integers) be costed exactly
    instead of by pickled size.
    """

    def transfer_nbytes(self) -> int:  # pragma: no cover - interface
        """Bytes a real implementation would serialize for this value."""
        raise NotImplementedError


def payload_nbytes(obj: Any) -> int:
    """Estimate the wire size of ``obj`` in bytes.

    NumPy arrays and scalars report their exact buffer size; built-in
    scalars count as 8 bytes; containers sum their elements plus a small
    per-item overhead; objects implementing ``transfer_nbytes`` are asked;
    anything else falls back to its pickle length.
    """
    if obj is None:
        return 1
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, np.generic):
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, complex)):
        return _SCALAR_BYTES
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, TransferSized):
        return int(obj.transfer_nbytes())
    meth = getattr(obj, "transfer_nbytes", None)
    if callable(meth):
        return int(meth())
    if isinstance(obj, (tuple, list, set, frozenset)):
        return sum(payload_nbytes(x) + _PER_ITEM_OVERHEAD for x in obj)
    if isinstance(obj, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) + _PER_ITEM_OVERHEAD
            for k, v in obj.items()
        )
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return _SCALAR_BYTES


def copy_for_transfer(obj: Any) -> Any:
    """Return ``obj`` isolated from the sender's address space.

    Immutable scalars are returned as-is; NumPy arrays are copied with
    ``.copy()`` (cheaper than deepcopy); containers are rebuilt
    recursively; everything else is ``copy.deepcopy``-ed.

    Zero-copy fast paths — values that *cannot* be mutated by the
    receiver pass through by reference:

    * non-writeable NumPy arrays (``arr.flags.writeable`` False — freeze
      a payload with ``arr.setflags(write=False)`` to send it for free);
    * ``frozenset``;
    * objects declaring ``__transfer_safe__ = True`` (the
      :class:`TransferSafe` marker);
    * tuples whose elements all pass through unchanged (the original
      tuple object is returned, not a rebuilt copy).
    """
    if obj is None or isinstance(obj, (bool, int, float, complex, str, bytes)):
        return obj
    if isinstance(obj, np.generic):
        return obj  # numpy scalars are immutable
    if isinstance(obj, np.ndarray):
        if not obj.flags.writeable:
            return obj
        return obj.copy()
    if isinstance(obj, frozenset):
        return obj
    if getattr(obj, "__transfer_safe__", False):
        return obj
    if isinstance(obj, tuple):
        copied = tuple(copy_for_transfer(x) for x in obj)
        if all(c is x for c, x in zip(copied, obj)):
            return obj
        return copied
    if isinstance(obj, list):
        return [copy_for_transfer(x) for x in obj]
    if isinstance(obj, dict):
        return {copy_for_transfer(k): copy_for_transfer(v) for k, v in obj.items()}
    try:
        return copy.deepcopy(obj)
    except Exception as exc:
        # Fail at the send boundary with the offending type in hand,
        # not deep inside the channel layer with a bare TypeError.
        raise TransferError(
            f"payload of type {type(obj).__name__!r} cannot cross the rank "
            f"boundary: it is neither TransferSafe (immutable, sent by "
            f"reference) nor deep-copyable/picklable ({exc}); mark the "
            f"class with __transfer_safe__ = True if receivers never "
            f"mutate it, or make its state picklable"
        ) from exc


def ensure_transferable(obj: Any) -> bytes:
    """Pickle ``obj`` for a process boundary, or raise :class:`TransferError`.

    The process-backend channel layer uses this to validate a payload
    *before* committing to an IPC frame, so an unpicklable operator or
    state fails with the offending type named instead of a pickle
    traceback from inside a worker pipe.
    """
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise TransferError(
            f"payload of type {type(obj).__name__!r} cannot cross the "
            f"process boundary: it is neither TransferSafe nor picklable "
            f"({exc})"
        ) from exc
