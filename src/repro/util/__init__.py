"""Shared utilities: the NAS ``randlc`` generator and transfer sizing."""

from repro.util.rng import (
    RANDLC_A,
    RANDLC_SEED,
    Randlc,
    randlc_array,
    randlc_pow,
    randlc_skip,
)
from repro.util.sizing import (
    TransferSafe,
    TransferSized,
    copy_for_transfer,
    payload_nbytes,
)

__all__ = [
    "RANDLC_A",
    "RANDLC_SEED",
    "Randlc",
    "randlc_array",
    "randlc_pow",
    "randlc_skip",
    "payload_nbytes",
    "copy_for_transfer",
    "TransferSafe",
    "TransferSized",
]
