"""Shared utilities: the NAS ``randlc`` generator and transfer sizing."""

from repro.util.rng import (
    RANDLC_A,
    RANDLC_SEED,
    Randlc,
    randlc_array,
    randlc_pow,
    randlc_skip,
)
from repro.util.sizing import payload_nbytes, copy_for_transfer

__all__ = [
    "RANDLC_A",
    "RANDLC_SEED",
    "Randlc",
    "randlc_array",
    "randlc_pow",
    "randlc_skip",
    "payload_nbytes",
    "copy_for_transfer",
]
