"""Faithful port of the paper's Listing 1: the local-view ``mink``
operator as one would write it in C against the local-view routines.

Each processor starts with a vector of ``k`` elements **in sorted order
from high to low**; the reduction combines the vectors so the result
contains the ``k`` minimum values over all vectors (still sorted high to
low).  ``ident``/``combine`` are direct transliterations of the C code —
including its insertion-bubble inner loop — so tests can confirm the
local-view and global-view formulations agree.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mink_ident", "mink_combine", "make_local_mink_op", "INT_MAX"]

INT_MAX = np.iinfo(np.int64).max


def mink_ident(k: int) -> np.ndarray:
    """Listing 1's ``ident``: a k-vector of INT_MAX."""
    return np.full(k, INT_MAX, dtype=np.int64)


def mink_combine(v1: np.ndarray, v2: np.ndarray) -> np.ndarray:
    """Listing 1's ``combine``: merge ``v1`` into ``v2`` and return ``v2``.

    For every element of ``v1`` smaller than the current largest kept
    minimum (``v2[0]``), replace it and bubble it down to restore the
    high-to-low order.  Mirrors the C code line by line, except that the
    *left* operand is the one mutated in the rest of this library, so the
    roles are swapped at the call boundary by :func:`make_local_mink_op`.
    """
    k = len(v2)
    for i in range(k):
        if v1[i] < v2[0]:
            v2[0] = v1[i]
            for j in range(1, k):
                if v2[j - 1] < v2[j]:
                    v2[j - 1], v2[j] = v2[j], v2[j - 1]
    return v2


def make_local_mink_op(k: int):
    """Return ``(ident_fn, combine_fn)`` ready for the LOCAL_* routines.

    ``combine_fn(a, b)`` folds ``b`` into ``a`` (mutating the left
    operand, per the library contract) and returns ``a``.  The mink
    reduction is commutative, so operand order does not affect results.
    """

    def ident() -> np.ndarray:
        return mink_ident(k)

    def combine(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return mink_combine(b, a)

    return ident, combine
