"""Local-view user-defined reductions and scans (paper Section 2)."""

from repro.localview.api import (
    LOCAL_ALLREDUCE,
    LOCAL_REDUCE,
    LOCAL_SCAN,
    LOCAL_XSCAN,
    exclusive_from_inclusive_shift,
)
from repro.localview.mink_c import make_local_mink_op, mink_combine, mink_ident

__all__ = [
    "LOCAL_REDUCE",
    "LOCAL_ALLREDUCE",
    "LOCAL_SCAN",
    "LOCAL_XSCAN",
    "exclusive_from_inclusive_shift",
    "make_local_mink_op",
    "mink_combine",
    "mink_ident",
]
