"""The paper's local-view abstraction (Section 2).

In the local-view model each processor contributes *one already-computed
value per result* and the abstraction covers only the combine phase of
Figure 1.  Four routines support it:

* :func:`LOCAL_ALLREDUCE` / :func:`LOCAL_REDUCE` — take a combine
  function and one value per processor; leave the result on all
  processors or a single root.
* :func:`LOCAL_XSCAN` / :func:`LOCAL_SCAN` — take an identity function,
  a combine function and one value per processor; the identity function
  is required by the exclusive scan (it defines the first slot MPI
  leaves undefined).

**Aggregation** (paper §2.1): to compute many reductions at once and
amortize message overhead, pass a NumPy array of values; the combine
function is applied to whole arrays (element-wise for the built-in ops),
exactly like MPI's ``count`` argument.

The combine function follows the mutation contract of the whole library:
it may mutate and return its left (lower-rank) operand; it must never
mutate its right operand.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.mpi.comm import Communicator
from repro.mpi.op import Op
from repro.util.sizing import payload_nbytes

__all__ = [
    "LOCAL_REDUCE",
    "LOCAL_ALLREDUCE",
    "LOCAL_SCAN",
    "LOCAL_XSCAN",
]

CombineFn = Callable[[Any, Any], Any]
IdentFn = Callable[[], Any]


def _as_op(combine: CombineFn | Op, commutative: bool, identity: IdentFn | None) -> Op:
    if isinstance(combine, Op):
        if identity is not None and combine.identity is None:
            return Op(
                combine.fn,
                commutative=combine.commutative,
                identity=identity,
                elementwise=combine.elementwise,
                name=combine.name,
            )
        return combine
    return Op(combine, commutative=commutative, identity=identity)


def LOCAL_REDUCE(
    comm: Communicator,
    combine: CombineFn | Op,
    value: Any,
    *,
    root: int = 0,
    commutative: bool = True,
    fanout: int = 2,
    combine_seconds: float = 0.0,
    algorithm: str = "auto",
) -> Any:
    """Reduce one value per processor; the result lands on ``root``.

    Parameters mirror the paper: the combine function and the value.
    ``commutative`` (ignored when ``combine`` is an :class:`Op`, which
    carries its own flag) selects between order-preserving and
    as-available combining schedules; ``fanout`` widens the tree for
    commutative operators (§1).  ``algorithm`` is forwarded to
    :meth:`~repro.mpi.comm.Communicator.reduce`; the default ``"auto"``
    lets the tuned decision table pick the schedule.
    """
    op = _as_op(combine, commutative, None)
    tr = comm.tracer
    if not tr.enabled:
        return comm.reduce(
            value, op, root=root, fanout=fanout,
            combine_seconds=combine_seconds, algorithm=algorithm,
        )
    with tr.span("LOCAL_REDUCE", phase="combine", op=op.name) as sp:
        sp.add(nbytes=payload_nbytes(value))
        return comm.reduce(
            value, op, root=root, fanout=fanout,
            combine_seconds=combine_seconds, algorithm=algorithm,
        )


def LOCAL_ALLREDUCE(
    comm: Communicator,
    combine: CombineFn | Op,
    value: Any,
    *,
    commutative: bool = True,
    combine_seconds: float = 0.0,
    algorithm: str = "auto",
) -> Any:
    """Reduce one value per processor; every processor gets the result.

    ``algorithm`` is forwarded to
    :meth:`~repro.mpi.comm.Communicator.allreduce`; the default
    ``"auto"`` lets the tuned decision table pick the schedule.
    """
    op = _as_op(combine, commutative, None)
    tr = comm.tracer
    if not tr.enabled:
        return comm.allreduce(
            value, op, combine_seconds=combine_seconds, algorithm=algorithm
        )
    with tr.span("LOCAL_ALLREDUCE", phase="combine", op=op.name) as sp:
        sp.add(nbytes=payload_nbytes(value))
        return comm.allreduce(
            value, op, combine_seconds=combine_seconds, algorithm=algorithm
        )


def LOCAL_SCAN(
    comm: Communicator,
    ident: IdentFn | None,
    combine: CombineFn | Op,
    value: Any,
    *,
    commutative: bool = True,
    combine_seconds: float = 0.0,
    algorithm: str = "auto",
) -> Any:
    """Inclusive prefix over processors: rank r gets v_0 ⊕ ... ⊕ v_r.

    The identity function is accepted for symmetry with LOCAL_XSCAN but
    is not needed by the inclusive scan (paper §2: the inclusive scan can
    be computed from the exclusive one without communication, not vice
    versa).
    """
    op = _as_op(combine, commutative, ident)
    tr = comm.tracer
    if not tr.enabled:
        return comm.scan(
            value, op, combine_seconds=combine_seconds, algorithm=algorithm
        )
    with tr.span("LOCAL_SCAN", phase="combine", op=op.name) as sp:
        sp.add(nbytes=payload_nbytes(value))
        return comm.scan(
            value, op, combine_seconds=combine_seconds, algorithm=algorithm
        )


def LOCAL_XSCAN(
    comm: Communicator,
    ident: IdentFn,
    combine: CombineFn | Op,
    value: Any,
    *,
    commutative: bool = True,
    combine_seconds: float = 0.0,
    algorithm: str = "auto",
) -> Any:
    """Exclusive prefix over processors: rank r gets v_0 ⊕ ... ⊕ v_{r-1};
    rank 0 gets ``ident()``.  The identity function is mandatory — it is
    exactly what makes the exclusive scan's first slot well-defined."""
    if ident is None and not (isinstance(combine, Op) and combine.identity):
        raise TypeError("LOCAL_XSCAN requires an identity function")
    op = _as_op(combine, commutative, ident)
    tr = comm.tracer
    if not tr.enabled:
        return comm.exscan(
            value, op, combine_seconds=combine_seconds, algorithm=algorithm
        )
    with tr.span("LOCAL_XSCAN", phase="combine", op=op.name) as sp:
        sp.add(nbytes=payload_nbytes(value))
        return comm.exscan(
            value, op, combine_seconds=combine_seconds, algorithm=algorithm
        )


def exclusive_from_inclusive_shift(
    comm: Communicator,
    inclusive_local: Any,
    ident: IdentFn,
) -> Any:
    """Derive the exclusive scan from the inclusive one **by shifting**.

    Paper §2: "Given the inclusive scan, it is impossible to compute the
    exclusive scan without communication if the combine function cannot
    be inverted ... the exclusive scan can only be computed from the
    inclusive scan by shifting the values across the processors."  This
    is that shift: every rank sends its inclusive value one rank to the
    right; rank 0 takes the identity.  One neighbor message per rank —
    cheaper than re-scanning, dearer than the local inclusive-from-
    exclusive direction, which needs no communication at all.

    Works per-rank on the local-view values (one value per rank); for
    element sequences apply it to the last local element and shift
    locally.
    """
    r, p = comm.rank, comm.size
    if r < p - 1:
        comm.send(inclusive_local, dest=r + 1, tag=11)
    if r > 0:
        return comm.recv(source=r - 1, tag=11)
    return ident()
