"""Analysis: speedup/efficiency series and paper-style reports."""

from repro.analysis.efficiency import Series, crossover, sweep
from repro.analysis.report import (
    format_series_csv,
    format_speedup_figure,
    format_table,
)
from repro.analysis.timeline import (
    engine_session_to_chrome_trace,
    to_chrome_trace,
    tracer_to_chrome_trace,
    write_chrome_trace,
    write_engine_session_trace,
)
from repro.analysis.utilization import (
    RankUtilization,
    format_utilization,
    utilization,
)

__all__ = [
    "Series",
    "sweep",
    "crossover",
    "format_table",
    "format_speedup_figure",
    "format_series_csv",
    "RankUtilization",
    "utilization",
    "format_utilization",
    "to_chrome_trace",
    "tracer_to_chrome_trace",
    "write_chrome_trace",
    "engine_session_to_chrome_trace",
    "write_engine_session_trace",
]
