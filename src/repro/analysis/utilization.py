"""Per-rank time breakdown of a simulated run.

Splits each rank's virtual timeline into charged *compute* time and
everything else (communication latency, waiting on slower ranks), plus
the trailing idle gap to the run's makespan.  The figure benchmarks use
this to explain *why* a curve saturates — e.g. Figure 3's MPI variant at
class A spends most of its time below 20% utilization at high p.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.executor import SpmdResult

__all__ = ["RankUtilization", "utilization", "format_utilization"]


@dataclass(frozen=True)
class RankUtilization:
    rank: int
    compute_seconds: float  # explicitly charged kernel time
    comm_wait_seconds: float  # clock advance not accounted to compute
    trailing_idle_seconds: float  # gap between own finish and makespan

    @property
    def busy_fraction(self) -> float:
        """Charged compute as a fraction of the whole run."""
        total = self.compute_seconds + self.comm_wait_seconds + self.trailing_idle_seconds
        return self.compute_seconds / total if total > 0 else 1.0


def utilization(result: SpmdResult) -> list[RankUtilization]:
    """Break each rank's virtual time into compute / comm-and-wait /
    trailing idle."""
    makespan = result.time
    out = []
    for rank, (clock, trace) in enumerate(zip(result.clocks, result.traces)):
        compute = trace.compute_seconds
        comm_wait = max(0.0, clock - compute)
        trailing = max(0.0, makespan - clock)
        out.append(RankUtilization(rank, compute, comm_wait, trailing))
    return out


def format_utilization(result: SpmdResult, *, max_rows: int = 16) -> str:
    """A per-rank table plus the aggregate busy fraction."""
    rows = utilization(result)
    makespan = result.time
    lines = [
        f"makespan {makespan:.3e} s over {len(rows)} ranks",
        f"{'rank':>4s}  {'compute':>10s}  {'comm+wait':>10s}  "
        f"{'idle':>10s}  {'busy%':>6s}",
    ]
    for u in rows[:max_rows]:
        lines.append(
            f"{u.rank:>4d}  {u.compute_seconds:>10.3e}  "
            f"{u.comm_wait_seconds:>10.3e}  {u.trailing_idle_seconds:>10.3e}"
            f"  {100 * u.busy_fraction:>5.1f}%"
        )
    if len(rows) > max_rows:
        lines.append(f"  ... ({len(rows) - max_rows} more ranks)")
    if makespan > 0:
        total_busy = sum(u.compute_seconds for u in rows)
        lines.append(
            f"aggregate utilization: "
            f"{100 * total_busy / (makespan * len(rows)):.1f}%"
        )
    return "\n".join(lines)
