"""Plain-text reporting of figure series, paper style.

The benchmarks print these tables (and write them under ``results/``)
so the reproduced numbers sit next to the paper's claims in
EXPERIMENTS.md.  Output is deliberately plain monospace text.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.efficiency import Series

__all__ = ["format_table", "format_speedup_figure", "format_series_csv"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Align columns; floats get 3 decimals."""

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_speedup_figure(
    title: str,
    series: Sequence[Series],
    *,
    show_efficiency: bool = True,
) -> str:
    """One figure panel: processor counts down the rows, one speedup
    column per variant (plus efficiency in parentheses)."""
    procs = series[0].procs
    for s in series:
        if s.procs != procs:
            raise ValueError(
                f"series {s.label!r} has a different processor grid"
            )
    headers = ["p"] + [s.label for s in series]
    rows = []
    speedups = [s.speedup() for s in series]
    effs = [s.efficiency() for s in series]
    for i, p in enumerate(procs):
        row: list[object] = [p]
        for j in range(len(series)):
            if show_efficiency:
                row.append(f"{speedups[j][i]:7.2f} ({effs[j][i]:4.2f})")
            else:
                row.append(f"{speedups[j][i]:7.2f}")
        rows.append(row)
    note = "columns: speedup (efficiency)" if show_efficiency else "columns: speedup"
    return format_table(headers, rows, title=title) + f"\n[{note}]"


def format_series_csv(series: Sequence[Series]) -> str:
    """Machine-readable dump: p, then one time column per series."""
    procs = series[0].procs
    lines = ["p," + ",".join(s.label.replace(",", ";") for s in series)]
    for i, p in enumerate(procs):
        lines.append(
            f"{p}," + ",".join(f"{s.times[i]:.9e}" for s in series)
        )
    return "\n".join(lines)
