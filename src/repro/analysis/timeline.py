"""Export simulated timelines to the Chrome trace-event format.

Run with ``record_events=True`` and feed the result here; the emitted
JSON loads in ``chrome://tracing`` / Perfetto, with one row per rank and
color-coded compute/send/recv/collective slices on the *virtual* time
axis — the quickest way to see why a schedule saturates.

Events are recorded at completion timestamps; durations are
reconstructed per kind (compute spans end at their timestamp with their
charged length; messages and collective entries render as instant
events).
"""

from __future__ import annotations

import json
from typing import Any

from repro.runtime.executor import SpmdResult

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: microseconds per virtual second in the output (trace format wants us)
_SCALE = 1e6


def to_chrome_trace(result: SpmdResult) -> dict[str, Any]:
    """Build the trace dict; requires the run to have recorded events."""
    events: list[dict[str, Any]] = []
    any_events = False
    for rank, trace in enumerate(result.traces):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
        for ev in trace.events:
            any_events = True
            t_us = ev.t * _SCALE
            if ev.kind == "compute":
                label, seconds = ev.detail
                events.append(
                    {
                        "name": str(label),
                        "cat": "compute",
                        "ph": "X",
                        "pid": 0,
                        "tid": rank,
                        "ts": (ev.t - seconds) * _SCALE,
                        "dur": seconds * _SCALE,
                    }
                )
            elif ev.kind in ("send", "recv"):
                peer, tag, nbytes = ev.detail
                events.append(
                    {
                        "name": f"{ev.kind} {'->' if ev.kind == 'send' else '<-'} {peer}",
                        "cat": ev.kind,
                        "ph": "i",
                        "s": "t",
                        "pid": 0,
                        "tid": rank,
                        "ts": t_us,
                        "args": {"tag": str(tag), "bytes": nbytes},
                    }
                )
            elif ev.kind == "collective":
                (name,) = ev.detail
                events.append(
                    {
                        "name": name,
                        "cat": "collective",
                        "ph": "i",
                        "s": "t",
                        "pid": 0,
                        "tid": rank,
                        "ts": t_us,
                    }
                )
    if not any_events:
        raise ValueError(
            "no events recorded — run spmd_run(..., record_events=True)"
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "makespan_seconds": result.time,
            "nprocs": result.nprocs,
        },
    }


def write_chrome_trace(result: SpmdResult, path: str) -> None:
    """Serialize :func:`to_chrome_trace` to ``path`` (open in Perfetto)."""
    with open(path, "w") as f:
        json.dump(to_chrome_trace(result), f)
