"""Export simulated timelines to the Chrome trace-event format.

Two sources, one output format (loads in ``chrome://tracing`` /
Perfetto, one row per rank, virtual-time axis):

* **Span profiles** (preferred): run with a :class:`repro.obs.Tracer`
  (``spmd_run(..., tracer=tracer)``) and the exported trace contains
  real duration slices — every phase span and every collective renders
  with its begin/end pair, nested slices and all.  Use
  :func:`tracer_to_chrome_trace` for a whole profile (one Perfetto
  process per run) or :func:`to_chrome_trace` on a result whose
  ``profile`` is set.
* **Legacy counter traces**: run with ``record_events=True`` and only
  completion-timestamped events exist; compute slices are reconstructed
  from their charged length while messages and collective entries render
  as zero-duration instant events.  This fallback keeps old traces
  loadable but cannot show where time inside a collective went.

A third source lives on the **wall clock** rather than virtual time:
:func:`engine_session_to_chrome_trace` renders an engine telemetry's
per-rank busy intervals — which pool rank ran which job, when — as one
Perfetto timeline for the whole service session
(:mod:`repro.obs.telemetry`).
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.tracer import RunCapture, Tracer
from repro.runtime.executor import SpmdResult

__all__ = [
    "to_chrome_trace",
    "tracer_to_chrome_trace",
    "write_chrome_trace",
    "engine_session_to_chrome_trace",
    "write_engine_session_trace",
]

#: microseconds per virtual second in the output (trace format wants us)
_SCALE = 1e6


def _thread_meta(pid: int, nprocs: int) -> list[dict[str, Any]]:
    return [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": rank,
            "args": {"name": f"rank {rank}"},
        }
        for rank in range(nprocs)
    ]


def _span_events(run: RunCapture, pid: int) -> list[dict[str, Any]]:
    """Render every captured span as an "X" duration slice."""
    events: list[dict[str, Any]] = []
    for span in run.spans():
        args: dict[str, Any] = {"id": span.span_id}
        if span.op:
            args["op"] = span.op
        if span.nbytes:
            args["bytes"] = span.nbytes
        if span.elements:
            args["elements"] = span.elements
        events.append(
            {
                "name": span.name,
                "cat": span.phase or "span",
                "ph": "X",
                "pid": pid,
                "tid": span.rank,
                "ts": span.t_start * _SCALE,
                "dur": span.duration * _SCALE,
                "args": args,
            }
        )
    return events


def _message_flow_events(run: RunCapture, pid: int) -> list[dict[str, Any]]:
    """Instant markers for message injection/extraction recorded by the
    tracer; they annotate the span slices rather than replace them."""
    events: list[dict[str, Any]] = []
    for rt in run.ranks:
        for e in rt.sends:
            events.append(
                {
                    "name": f"send -> {e.dest}",
                    "cat": "send",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": rt.rank,
                    "ts": e.t_send * _SCALE,
                    "args": {"tag": str(e.tag), "bytes": e.nbytes},
                }
            )
        for e in rt.recvs:
            events.append(
                {
                    "name": f"recv <- {e.source}",
                    "cat": "recv",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": rt.rank,
                    "ts": e.t_done * _SCALE,
                    "args": {
                        "tag": str(e.tag),
                        "bytes": e.nbytes,
                        "blocked": e.blocked,
                    },
                }
            )
    return events


def _legacy_events(result: SpmdResult) -> tuple[list[dict[str, Any]], bool]:
    events: list[dict[str, Any]] = []
    any_events = False
    for rank, trace in enumerate(result.traces):
        for ev in trace.events:
            any_events = True
            t_us = ev.t * _SCALE
            if ev.kind == "compute":
                label, seconds = ev.detail
                events.append(
                    {
                        "name": str(label),
                        "cat": "compute",
                        "ph": "X",
                        "pid": 0,
                        "tid": rank,
                        "ts": (ev.t - seconds) * _SCALE,
                        "dur": seconds * _SCALE,
                    }
                )
            elif ev.kind in ("send", "recv"):
                peer, tag, nbytes = ev.detail
                events.append(
                    {
                        "name": f"{ev.kind} {'->' if ev.kind == 'send' else '<-'} {peer}",
                        "cat": ev.kind,
                        "ph": "i",
                        "s": "t",
                        "pid": 0,
                        "tid": rank,
                        "ts": t_us,
                        "args": {"tag": str(tag), "bytes": nbytes},
                    }
                )
            elif ev.kind == "collective":
                (name,) = ev.detail
                events.append(
                    {
                        "name": name,
                        "cat": "collective",
                        "ph": "i",
                        "s": "t",
                        "pid": 0,
                        "tid": rank,
                        "ts": t_us,
                    }
                )
    return events, any_events


def to_chrome_trace(result: SpmdResult) -> dict[str, Any]:
    """Build the trace dict for one run.

    Prefers the span profile attached by ``spmd_run(..., tracer=...)``
    (real duration slices, collectives with begin/end pairs); falls back
    to reconstructing from legacy ``record_events=True`` counter traces.
    """
    profile = getattr(result, "profile", None)
    if profile is not None:
        events = _thread_meta(0, result.nprocs)
        events += _span_events(profile, 0)
        events += _message_flow_events(profile, 0)
    else:
        legacy, any_events = _legacy_events(result)
        if not any_events:
            raise ValueError(
                "no events recorded — run spmd_run(..., record_events=True) "
                "or pass a tracer"
            )
        events = _thread_meta(0, result.nprocs) + legacy
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "makespan_seconds": result.time,
            "nprocs": result.nprocs,
        },
    }


def tracer_to_chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """Build one trace dict for a whole profile: each captured run
    becomes a Perfetto process (pid = run index) with one row per rank
    and duration slices for every span."""
    events: list[dict[str, Any]] = []
    for run in tracer.runs:
        label = f"run {run.index}" + (f" [{run.label}]" if run.label else "")
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": run.index,
                "args": {"name": label},
            }
        )
        events += _thread_meta(run.index, run.nprocs)
        events += _span_events(run, run.index)
        events += _message_flow_events(run, run.index)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "runs": len(tracer.runs),
            "total_virtual_seconds": sum(
                r.makespan or 0.0 for r in tracer.runs
            ),
        },
    }


def engine_session_to_chrome_trace(telemetry: Any) -> dict[str, Any]:
    """Build one trace dict from an engine session's telemetry.

    One Perfetto process ("engine pool"), one row per pool rank, and an
    "X" slice per closed busy interval — i.e. per (job, member-rank)
    execution — named by the job's label, on the **wall-clock** axis
    (seconds since telemetry start).  This is the service-level
    complement to the virtual-time run traces above: it shows
    multiplexing, gang packing and idle gaps across jobs.
    """
    intervals = telemetry.intervals()
    nprocs = getattr(telemetry, "nprocs", 0)
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "engine pool (wall clock)"},
        }
    ]
    events += _thread_meta(0, nprocs)
    for rank, t0, t1, job_id, label in intervals:
        events.append(
            {
                "name": label or f"job {job_id}",
                "cat": "job",
                "ph": "X",
                "pid": 0,
                "tid": rank,
                "ts": t0 * _SCALE,
                "dur": (t1 - t0) * _SCALE,
                "args": {"job_id": job_id},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "wall",
            "nprocs": nprocs,
            "intervals": len(intervals),
            "interval_drops": getattr(telemetry, "interval_drops", 0),
        },
    }


def write_engine_session_trace(telemetry: Any, path: str) -> None:
    """Serialize an engine session's per-rank busy timeline to ``path``
    (open in Perfetto)."""
    with open(path, "w") as f:
        json.dump(engine_session_to_chrome_trace(telemetry), f)


def write_chrome_trace(result: SpmdResult | Tracer, path: str) -> None:
    """Serialize a result's or a whole profile's trace to ``path``
    (open in Perfetto)."""
    if isinstance(result, Tracer):
        doc = tracer_to_chrome_trace(result)
    else:
        doc = to_chrome_trace(result)
    with open(path, "w") as f:
        json.dump(doc, f)
