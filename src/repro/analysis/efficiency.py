"""Speedup/efficiency series for the figure benchmarks.

The paper's Figures 2 and 3 are "efficiency graphs showing the speedup"
of a phase across processor counts for several program variants.  A
:class:`Series` holds one variant's times; :func:`sweep` produces one by
running a phase at each processor count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = ["Series", "sweep", "crossover"]


@dataclass
class Series:
    """Times of one program variant across processor counts."""

    label: str
    procs: list[int] = field(default_factory=list)
    times: list[float] = field(default_factory=list)

    def add(self, p: int, t: float) -> None:
        self.procs.append(p)
        self.times.append(t)

    @property
    def t1(self) -> float:
        """The single-processor time (base of the speedup)."""
        for p, t in zip(self.procs, self.times):
            if p == 1:
                return t
        return self.times[0] * self.procs[0]  # extrapolated base

    def speedup(self, base_t1: float | None = None) -> list[float]:
        """Speedup at each processor count, relative to ``base_t1``
        (default: this series' own 1-processor time)."""
        base = self.t1 if base_t1 is None else base_t1
        return [base / t if t > 0 else float("inf") for t in self.times]

    def efficiency(self, base_t1: float | None = None) -> list[float]:
        """Parallel efficiency: speedup / p."""
        return [s / p for s, p in zip(self.speedup(base_t1), self.procs)]


def sweep(
    label: str,
    run: Callable[[int], float],
    procs: Sequence[int],
) -> Series:
    """Run ``run(p) -> time`` for every processor count."""
    s = Series(label)
    for p in procs:
        s.add(p, run(p))
    return s


def crossover(a: Series, b: Series) -> int | None:
    """Smallest processor count at which ``a`` becomes faster than ``b``
    (None if never); both series must share their proc grid."""
    if a.procs != b.procs:
        raise ValueError("crossover needs series over the same proc counts")
    for p, ta, tb in zip(a.procs, a.times, b.times):
        if ta < tb:
            return p
    return None
