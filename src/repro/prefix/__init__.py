"""Parallel-prefix networks and algorithms (Ladner–Fischer et al.)."""

from repro.prefix.blelloch import (
    blelloch_scan,
    blelloch_xscan,
    inclusive_from_exclusive,
)
from repro.prefix.circuits import PrefixCircuit
from repro.prefix.networks import (
    ALL_NETWORKS,
    brent_kung,
    hillis_steele,
    kogge_stone,
    ladner_fischer,
    serial,
    sklansky,
)

__all__ = [
    "PrefixCircuit",
    "serial",
    "kogge_stone",
    "hillis_steele",
    "sklansky",
    "brent_kung",
    "ladner_fischer",
    "ALL_NETWORKS",
    "blelloch_scan",
    "blelloch_xscan",
    "inclusive_from_exclusive",
]
