"""Prefix-circuit representation and analysis.

A prefix circuit over ``n`` inputs is an ordered list of combine
operations ``(i, j)`` with ``i < j``, each meaning ``x[j] = x[i] ⊕ x[j]``;
a valid circuit leaves ``x[j] = a_0 ⊕ ... ⊕ a_j`` for every j (the
inclusive scan).  This is the abstraction under which Ladner & Fischer
(the paper's reference [11]) study the depth/size trade-off that makes
scans efficient in parallel.

``depth`` is computed by dependency scheduling (unbounded parallelism,
unit-time ⊕): an operation is ready one step after both its operands'
values are.  ``size`` is the operation count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import ReproError

__all__ = ["PrefixCircuit"]


@dataclass
class PrefixCircuit:
    """An ordered prefix circuit: apply ``ops`` left to right."""

    n: int
    ops: list[tuple[int, int]] = field(default_factory=list)
    name: str = "circuit"

    def __post_init__(self) -> None:
        for i, j in self.ops:
            if not (0 <= i < j < self.n):
                raise ReproError(
                    f"{self.name}: bad op ({i}, {j}) for width {self.n}; "
                    "need 0 <= i < j < n"
                )

    # -- metrics -----------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of ⊕ operations."""
        return len(self.ops)

    @property
    def depth(self) -> int:
        """Critical-path length in ⊕ steps (unbounded parallelism)."""
        ready = [0] * self.n
        for i, j in self.ops:
            ready[j] = max(ready[i], ready[j]) + 1
        return max(ready, default=0)

    def levels(self) -> list[list[tuple[int, int]]]:
        """Group operations into dependency levels (ops within a level
        are concurrent).  Level k contains ops whose result becomes
        available at step k+1."""
        ready = [0] * self.n
        levels: dict[int, list[tuple[int, int]]] = {}
        for i, j in self.ops:
            lvl = max(ready[i], ready[j])
            levels.setdefault(lvl, []).append((i, j))
            ready[j] = lvl + 1
        return [levels[k] for k in sorted(levels)]

    # -- semantics ------------------------------------------------------------

    def evaluate(
        self, values: Sequence[Any], fn: Callable[[Any, Any], Any]
    ) -> list[Any]:
        """Run the circuit; returns the inclusive scan of ``values``."""
        if len(values) != self.n:
            raise ReproError(
                f"{self.name}: expected {self.n} inputs, got {len(values)}"
            )
        x = list(values)
        for i, j in self.ops:
            x[j] = fn(x[i], x[j])
        return x

    def verify(
        self,
        values: Sequence[Any],
        fn: Callable[[Any, Any], Any],
    ) -> bool:
        """Check the circuit computes the inclusive scan of ``values``."""
        got = self.evaluate(values, fn)
        acc = None
        for k, v in enumerate(values):
            acc = v if k == 0 else fn(acc, v)
            if got[k] != acc:
                return False
        return True

    def to_networkx(self):
        """The circuit as a DAG: nodes are (wire, version) value events,
        edges feed operations.  Requires networkx (an optional
        dependency, used by analysis only)."""
        import networkx as nx

        g = nx.DiGraph()
        version = [0] * self.n
        for w in range(self.n):
            g.add_node((w, 0), wire=w, kind="input")
        for i, j in self.ops:
            src_i = (i, version[i])
            src_j = (j, version[j])
            version[j] += 1
            dst = (j, version[j])
            g.add_node(dst, wire=j, kind="op")
            g.add_edge(src_i, dst)
            g.add_edge(src_j, dst)
        return g

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"PrefixCircuit({self.name}, n={self.n}, size={self.size}, "
            f"depth={self.depth})"
        )
