"""Blelloch's work-efficient exclusive scan (up-sweep / down-sweep).

The algorithm behind NESL's scan primitive (the paper's reference [4]
and the Blelloch "scan as principal abstraction" argument [3]): an
up-sweep builds a reduction tree in place, then a down-sweep pushes
prefixes back down, giving the **exclusive** scan in 2(n-1) operations
and 2 log2 n parallel steps.

The down-sweep's root-clearing and swap steps fall outside the pure
(i, j)-combine circuit model of :mod:`repro.prefix.circuits`, which is
why this lives here as an algorithm; it is also the canonical
demonstration that the exclusive scan is the natural primitive (paper
§2: inclusive derives locally from exclusive, not vice versa).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

__all__ = ["blelloch_xscan", "blelloch_scan", "inclusive_from_exclusive"]


def blelloch_xscan(
    values: Sequence[Any],
    fn: Callable[[Any, Any], Any],
    identity: Any,
    *,
    metrics: Any | None = None,
) -> list[Any]:
    """Exclusive scan of ``values`` under ``fn`` with the given identity.

    Handles any length (internally pads to a power of two with
    identities).  Runs in O(n) applications of ``fn``.  Pass a
    :class:`repro.obs.MetricsRegistry` as ``metrics`` to record the
    number of combine applications and the sweep depth.
    """
    n = len(values)
    if n == 0:
        return []
    size = 1
    while size < n:
        size <<= 1
    x = list(values) + [identity] * (size - n)
    applied = 0
    # up-sweep: x[j] accumulates the sum of its subtree
    d = 1
    while d < size:
        for j in range(2 * d - 1, size, 2 * d):
            x[j] = fn(x[j - d], x[j])
            applied += 1
        d <<= 1
    # down-sweep
    x[size - 1] = identity
    d = size // 2
    while d >= 1:
        for j in range(2 * d - 1, size, 2 * d):
            left = x[j - d]
            x[j - d] = x[j]
            x[j] = fn(left, x[j])
            applied += 1
        d //= 2
    if metrics is not None:
        metrics.counter("blelloch.calls").inc()
        metrics.counter("blelloch.combines").inc(applied)
        # 2 log2(size) parallel steps: one up-sweep + one down-sweep pass.
        metrics.histogram("blelloch.depth").observe(2 * (size - 1).bit_length())
    return x[:n]


def inclusive_from_exclusive(
    values: Sequence[Any],
    exclusive: Sequence[Any],
    fn: Callable[[Any, Any], Any],
) -> list[Any]:
    """Paper §1: "the inclusive scan can be defined in terms of the
    exclusive scan ... by applying the ⊕ operator to the elements in the
    original set and the elements in the set produced by the exclusive
    scan" — a purely local (communication-free) derivation."""
    return [fn(e, v) for e, v in zip(exclusive, values)]


def blelloch_scan(
    values: Sequence[Any],
    fn: Callable[[Any, Any], Any],
    identity: Any,
    *,
    metrics: Any | None = None,
) -> list[Any]:
    """Inclusive scan built the canonical way: exclusive + local fix-up."""
    return inclusive_from_exclusive(
        values, blelloch_xscan(values, fn, identity, metrics=metrics), fn
    )
