"""Classic prefix-network constructions.

Four families spanning the depth/size trade-off Ladner & Fischer mapped
out (the paper's reference [11] — "scans are efficiently implemented by
the parallel-prefix algorithm"):

====================  ===================  ==========================
network               depth                size
====================  ===================  ==========================
serial                n - 1                n - 1
Kogge–Stone           ⌈log2 n⌉             n⌈log2 n⌉ - 2^⌈log2 n⌉ + 1
Sklansky              ⌈log2 n⌉             ~ (n/2)·log2 n
Brent–Kung            2⌈log2 n⌉ - 2        2n - 2 - ⌈log2 n⌉   (n=2^k)
Ladner–Fischer P_k    ⌈log2 n⌉ (+1 if k=0) tunable between BK and Sklansky
====================  ===================  ==========================

(Kogge–Stone is the circuit form of the Hillis–Steele data-parallel scan;
both names are exported.)
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.prefix.circuits import PrefixCircuit

__all__ = [
    "serial",
    "kogge_stone",
    "hillis_steele",
    "sklansky",
    "brent_kung",
    "ladner_fischer",
    "ALL_NETWORKS",
]


def _check_n(n: int) -> None:
    if n < 1:
        raise ReproError(f"prefix network width must be >= 1, got {n}")


def serial(n: int) -> PrefixCircuit:
    """The sequential chain: depth and size both n-1."""
    _check_n(n)
    return PrefixCircuit(n, [(j - 1, j) for j in range(1, n)], "serial")


def kogge_stone(n: int) -> PrefixCircuit:
    """Minimum depth, maximum size: level d combines (j - 2^d, j)."""
    _check_n(n)
    ops = []
    d = 1
    while d < n:
        # Descending j within the level: op (j-d, j) must read the
        # pre-level value of j-d, which a later op in this level writes.
        # Ordering writes after reads makes the sequential evaluation of
        # the ordered op list equal to the level-synchronous circuit.
        ops.extend((j - d, j) for j in range(n - 1, d - 1, -1))
        d <<= 1
    return PrefixCircuit(n, ops, "kogge_stone")


def hillis_steele(n: int) -> PrefixCircuit:
    """Alias of :func:`kogge_stone` (the data-parallel formulation)."""
    c = kogge_stone(n)
    c.name = "hillis_steele"
    return c


def sklansky(n: int) -> PrefixCircuit:
    """Divide-and-conquer: minimum depth with ~ (n/2) log n size.

    At level d, every position whose bit d is set combines with the last
    position of the preceding 2^d-block.
    """
    _check_n(n)
    ops = []
    d = 0
    while (1 << d) < n:
        block = 1 << d
        for j in range(n):
            if j & block:
                i = (j >> d << d) - 1
                ops.append((i, j))
        d += 1
    return PrefixCircuit(n, ops, "sklansky")


def brent_kung(n: int) -> PrefixCircuit:
    """Work-efficient: up-sweep over pairs, then a down-sweep fix-up."""
    _check_n(n)
    ops: list[tuple[int, int]] = []
    # up-sweep
    d = 1
    while d < n:
        ops.extend(
            (j - d, j) for j in range(2 * d - 1, n, 2 * d)
        )
        d <<= 1
    # down-sweep
    d >>= 2
    while d >= 1:
        ops.extend(
            (j, j + d) for j in range(2 * d - 1, n - d, 2 * d)
        )
        d >>= 1
    return PrefixCircuit(n, ops, "brent_kung")


def ladner_fischer(n: int, k: int = 0) -> PrefixCircuit:
    """The Ladner–Fischer P_k construction.

    ``k`` trades size for depth: larger k recurses with the
    minimum-depth split more aggressively (depth ⌈log2 n⌉, size growing
    toward Sklansky's), while k = 0 inserts pair-contraction stages
    (one extra level of depth, markedly fewer operations — e.g. at
    n = 1024: depth 11/size 2695 for P_0 vs depth 10/size 5120 for
    Sklansky vs depth 18/size 2036 for Brent–Kung).  Following Ladner &
    Fischer (1977):

    * P_k(n), k ≥ 1: apply P_{k-1} to the first ⌈n/2⌉ positions and P_k
      to the rest, then fan the first half's total into every position
      of the second half.
    * P_0(n): combine adjacent pairs, apply P_1 to the pair totals (the
      odd positions), then fix up the interior even positions.
    """
    _check_n(n)
    if k < 0:
        raise ReproError(f"ladner_fischer needs k >= 0, got {k}")
    ops: list[tuple[int, int]] = []

    def build(pos: list[int], k: int) -> None:
        m = len(pos)
        if m <= 1:
            return
        if m == 2:
            ops.append((pos[0], pos[1]))
            return
        if k >= 1:
            half = (m + 1) // 2
            left, right = pos[:half], pos[half:]
            build(left, k - 1)
            build(right, k)
            last = left[-1]
            ops.extend((last, j) for j in right)
        else:
            # pair up adjacents; odd positions carry the pair totals
            for a, b in zip(pos[0::2], pos[1::2]):
                ops.append((a, b))
            build(pos[1::2], 1)
            # fix up interior even positions from the preceding odd one
            evens = pos[2::2]
            for j in evens:
                idx = pos.index(j)
                ops.append((pos[idx - 1], j))

    build(list(range(n)), k)
    return PrefixCircuit(n, ops, f"ladner_fischer(k={k})")


#: All constructions, for sweeps; callables n -> PrefixCircuit.
ALL_NETWORKS = {
    "serial": serial,
    "kogge_stone": kogge_stone,
    "sklansky": sklansky,
    "brent_kung": brent_kung,
    "ladner_fischer_0": lambda n: ladner_fischer(n, 0),
    "ladner_fischer_1": lambda n: ladner_fischer(n, 1),
    "ladner_fischer_2": lambda n: ladner_fischer(n, 2),
}
